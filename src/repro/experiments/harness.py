"""Experiment harness: registry-dispatched line-ups, sweeps and result tables.

Everything in Section 6 follows the same pattern — build instances, run a
set of algorithms, collect utility / time / subgroup metrics.  The harness
factors that pattern out so each figure in :mod:`repro.experiments.figures`
is a short declarative function.

Algorithm line-ups are *queries over the registry*
(:mod:`repro.core.registry`): :func:`default_algorithms` resolves the
paper's seven-way comparison to registered specs instead of hand-built
lambdas, and any registered name (baselines, ``extension``-tagged variants,
local-search hybrids) can be mixed into the same dictionary.
:func:`run_algorithms` builds one shared
:class:`~repro.core.pipeline.SolveContext` per instance and threads it
through every context-aware runner, so the whole line-up performs a single
simplified-LP relaxation solve; the context's hit counters land in each
report's ``info`` for provenance.

Metric computation sits on the vectorized objective engine
(:mod:`repro.core.objective`), so the per-sweep-point cost is dominated by
the algorithms themselves (LP solves, rounding passes), not by evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.pipeline import SolveContext
from repro.core.problem import SVGICInstance
from repro.core.registry import build_runners, names_by_tag
from repro.core.result import AlgorithmResult
from repro.metrics.evaluation import EvaluationReport, evaluate_result, evaluation_table
from repro.utils.rng import SeedLike, derive_seed, ensure_rng

AlgorithmRunner = Callable[..., AlgorithmResult]

#: Display order of the paper's line-up (registry tags are unordered sets).
_PAPER_ORDER = ("AVG", "AVG-D", "PER", "FMG", "SDP", "GRF", "IP")


def default_algorithms(
    *,
    include_ip: bool = False,
    ip_time_limit: Optional[float] = 30.0,
    avg_repetitions: int = 3,
    avg_d_ratio: float = 1.0,
) -> Dict[str, AlgorithmRunner]:
    """The paper's algorithm line-up: AVG, AVG-D, PER, FMG, SDP, GRF (+ optional IP).

    A thin registry query: every name is resolved from the ``paper`` tag and
    bound with the experiment-level defaults (AVG repetitions, AVG-D
    balancing ratio, IP time limit).  The returned runners accept an
    optional shared solve context (``runner(instance, rng=..., context=...)``).
    """
    tagged = set(names_by_tag("paper"))
    names = [name for name in _PAPER_ORDER if name in tagged]
    if not include_ip:
        names.remove("IP")
    overrides = {
        "AVG": {"repetitions": avg_repetitions},
        "AVG-D": {"balancing_ratio": avg_d_ratio},
        "IP": {"time_limit": ip_time_limit},
    }
    return build_runners(names, overrides)


def run_algorithms(
    instance: SVGICInstance,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = None,
    context: Optional[SolveContext] = None,
) -> Dict[str, EvaluationReport]:
    """Run every algorithm on ``instance`` and evaluate all Section-6 metrics.

    One :class:`SolveContext` (created here unless supplied) is shared by
    all context-aware runners, so redundant LP relaxation solves are
    eliminated across the line-up.  Legacy runners — plain callables without
    the ``accepts_context`` marker — are still invoked as
    ``runner(instance, rng=...)``.
    """
    generator = ensure_rng(seed)
    if context is None:
        context = SolveContext(instance)
    reports: Dict[str, EvaluationReport] = {}
    for name, runner in algorithms.items():
        if getattr(runner, "accepts_context", False):
            result = runner(instance, rng=generator, context=context)
        else:
            result = runner(instance, rng=generator)
        reports[name] = evaluate_result(instance, result)
    return reports


@dataclass
class ExperimentResult:
    """A table of experiment rows plus presentation helpers.

    ``rows`` is a list of flat dictionaries (one per algorithm per sweep
    point); ``parameters`` records the experiment configuration so results
    are self-describing when dumped.
    """

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add_report(self, report: EvaluationReport, **extra: Any) -> None:
        """Append an evaluation report (flattened) with extra sweep columns."""
        row = report.as_row()
        row.update(extra)
        self.rows.append(row)

    def add_row(self, **columns: Any) -> None:
        """Append a raw row."""
        self.rows.append(dict(columns))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all ``column=value`` criteria."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched

    def pivot(self, index: str, column: str, value: str) -> Dict[Any, Dict[Any, Any]]:
        """Nested dict ``{index_value: {column_value: value}}`` for series plots."""
        table: Dict[Any, Dict[Any, Any]] = {}
        for row in self.rows:
            table.setdefault(row.get(index), {})[row.get(column)] = row.get(value)
        return table

    def best_algorithm(self, *, by: str = "total_utility", at: Optional[Dict[str, Any]] = None) -> str:
        """Name of the algorithm with the largest ``by`` value (optionally at one sweep point)."""
        rows = self.rows if at is None else self.filter(**at)
        if not rows:
            raise ValueError("no rows match the given criteria")
        best = max(rows, key=lambda row: row.get(by, -np.inf))
        return str(best.get("algorithm"))

    def to_text(self, columns: Optional[Sequence[str]] = None, *, precision: int = 3) -> str:
        """Aligned text rendering of all rows."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        if columns is None:
            # Keep a stable, informative default ordering.
            preferred = [
                "algorithm",
                "x",
                "total_utility",
                "personal_pct",
                "social_pct",
                "co_display_pct",
                "alone_pct",
                "mean_regret",
                "seconds",
            ]
            present = set()
            for row in self.rows:
                present.update(row.keys())
            columns = [c for c in preferred if c in present]
            columns += [c for c in sorted(present) if c not in columns][:4]
        header = list(columns)
        lines: List[List[str]] = [header]
        for row in self.rows:
            cells = []
            for column in header:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append(f"{value:.{precision}f}")
                else:
                    cells.append(str(value))
            lines.append(cells)
        widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
        rendered = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in lines]
        separator = "  ".join("-" * width for width in widths)
        title = f"== {self.name} — {self.description} =="
        return "\n".join([title, rendered[0], separator] + rendered[1:])


def sweep(
    name: str,
    description: str,
    values: Iterable[Any],
    instance_factory: Callable[[Any, int], SVGICInstance],
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
) -> ExperimentResult:
    """Run every algorithm over a one-dimensional parameter sweep.

    ``instance_factory(value, rep_seed)`` must return the instance for one
    sweep point and repetition; metric rows are averaged over repetitions.
    """
    result = ExperimentResult(name=name, description=description,
                              parameters={"values": list(values), "repetitions": repetitions})
    for value in result.parameters["values"]:
        accumulators: Dict[str, List[EvaluationReport]] = {alg: [] for alg in algorithms}
        for rep in range(repetitions):
            rep_seed = derive_seed(seed, name, str(value), rep)
            instance = instance_factory(value, rep_seed)
            reports = run_algorithms(instance, algorithms, seed=rep_seed)
            for alg, report in reports.items():
                accumulators[alg].append(report)
        for alg, reports in accumulators.items():
            if not reports:
                continue
            averaged = _average_reports(reports)
            averaged[x_label] = value
            averaged["x"] = value
            averaged["algorithm"] = alg
            result.rows.append(averaged)
    return result


def _average_reports(reports: Sequence[EvaluationReport]) -> Dict[str, Any]:
    """Average the numeric columns of several evaluation reports."""
    rows = [report.as_row() for report in reports]
    averaged: Dict[str, Any] = {}
    for key in rows[0]:
        values = [row[key] for row in rows]
        if all(isinstance(v, (int, float, bool, np.floating, np.integer)) for v in values):
            averaged[key] = float(np.mean([float(v) for v in values]))
        else:
            averaged[key] = values[0]
    averaged["repetitions"] = len(rows)
    return averaged


__all__ = [
    "AlgorithmRunner",
    "default_algorithms",
    "run_algorithms",
    "ExperimentResult",
    "sweep",
    "evaluation_table",
]
