"""Experiment harness: registry line-ups, declarative sweep plans, result tables.

Everything in Section 6 follows the same pattern — build instances, run a
set of algorithms, collect utility / time / subgroup metrics.  The harness
factors that pattern out so each figure in :mod:`repro.experiments.figures`
is a short declarative function.

The harness is layered over three separable pieces:

* **Line-ups** are *queries over the registry*
  (:mod:`repro.core.registry`): :func:`default_algorithms` resolves the
  paper's seven-way comparison to registered specs instead of hand-built
  lambdas, and any registered name (baselines, ``extension``-tagged
  variants, local-search hybrids) can be mixed into the same dictionary.
* **Plans**: :func:`sweep` (1-D) and :func:`grid` (2-D) first *compile*
  the experiment into a :class:`~repro.experiments.executor.SweepPlan` —
  picklable :class:`~repro.experiments.executor.SweepJob` records carrying
  the sweep value, repetition, derived seed and the line-up as serializable
  name+kwargs payloads.  A plan can be inspected, sliced and shipped to
  workers before anything runs; :func:`run_plan` executes one and
  aggregates the rows.
* **Executors** (:mod:`repro.experiments.executor`) decide *where* jobs
  run: the default :class:`~repro.experiments.executor.SerialExecutor`
  executes in plan order in-process, and
  :class:`~repro.experiments.executor.ParallelExecutor` fans out over a
  process pool — chunked by sweep value so the per-instance
  :class:`~repro.core.pipeline.SolveContext` LP reuse survives, with
  deterministic result reassembly, so both executors produce identical
  tables for the same plan.

:func:`run_algorithms` remains the single-instance entry point: one shared
:class:`SolveContext` per instance, a single simplified-LP relaxation solve
for the whole line-up, and a per-algorithm derived seed so results are
independent of line-up order.  :class:`ExperimentResult` tables round-trip
through JSON (:meth:`ExperimentResult.to_json` /
:meth:`ExperimentResult.from_json`), so parallel runs and CI benchmarks can
dump self-describing results.

Metric computation sits on the vectorized objective engine
(:mod:`repro.core.objective`), so the per-sweep-point cost is dominated by
the algorithms themselves (LP solves, rounding passes), not by evaluation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.registry import build_runners, names_by_tag
from repro.core.result import AlgorithmResult
from repro.experiments.executor import (
    Executor,
    InstanceFactory,
    JobResult,
    SerialExecutor,
    SweepPlan,
    compile_grid,
    compile_sweep,
    run_algorithms,  # noqa: F401 — the harness's documented dispatch entry point
)
from repro.metrics.evaluation import EvaluationReport, evaluation_table
from repro.utils.rng import SeedLike

AlgorithmRunner = Callable[..., AlgorithmResult]

#: Display order of the paper's line-up (registry tags are unordered sets).
_PAPER_ORDER = ("AVG", "AVG-D", "PER", "FMG", "SDP", "GRF", "IP")


def default_algorithms(
    *,
    include_ip: bool = False,
    ip_time_limit: Optional[float] = 30.0,
    avg_repetitions: int = 3,
    avg_d_ratio: float = 1.0,
) -> Dict[str, AlgorithmRunner]:
    """The paper's algorithm line-up: AVG, AVG-D, PER, FMG, SDP, GRF (+ optional IP).

    A thin registry query: every name is resolved from the ``paper`` tag and
    bound with the experiment-level defaults (AVG repetitions, AVG-D
    balancing ratio, IP time limit).  The returned runners accept an
    optional shared solve context (``runner(instance, rng=..., context=...)``).
    """
    tagged = set(names_by_tag("paper"))
    names = [name for name in _PAPER_ORDER if name in tagged]
    if not include_ip:
        names.remove("IP")
    overrides = {
        "AVG": {"repetitions": avg_repetitions},
        "AVG-D": {"balancing_ratio": avg_d_ratio},
        "IP": {"time_limit": ip_time_limit},
    }
    return build_runners(names, overrides)


@dataclass
class ExperimentResult:
    """A table of experiment rows plus presentation helpers.

    ``rows`` is a list of flat dictionaries (one per algorithm per sweep
    point); ``parameters`` records the experiment configuration so results
    are self-describing when dumped.
    """

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add_report(self, report: EvaluationReport, **extra: Any) -> None:
        """Append an evaluation report (flattened) with extra sweep columns."""
        row = report.as_row()
        row.update(extra)
        self.rows.append(row)

    def add_row(self, **columns: Any) -> None:
        """Append a raw row."""
        self.rows.append(dict(columns))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all ``column=value`` criteria."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched

    def pivot(self, index: str, column: str, value: str) -> Dict[Any, Dict[Any, Any]]:
        """Nested dict ``{index_value: {column_value: value}}`` for series plots."""
        table: Dict[Any, Dict[Any, Any]] = {}
        for row in self.rows:
            table.setdefault(row.get(index), {})[row.get(column)] = row.get(value)
        return table

    def best_algorithm(self, *, by: str = "total_utility", at: Optional[Dict[str, Any]] = None) -> str:
        """Name of the algorithm with the largest ``by`` value (optionally at one sweep point)."""
        rows = self.rows if at is None else self.filter(**at)
        if not rows:
            raise ValueError("no rows match the given criteria")
        best = max(rows, key=lambda row: row.get(by, -np.inf))
        return str(best.get("algorithm"))

    def to_text(self, columns: Optional[Sequence[str]] = None, *, precision: int = 3) -> str:
        """Aligned text rendering of all rows."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        if columns is None:
            # Keep a stable, informative default ordering.
            preferred = [
                "algorithm",
                "x",
                "total_utility",
                "personal_pct",
                "social_pct",
                "co_display_pct",
                "alone_pct",
                "mean_regret",
                "seconds",
            ]
            present = set()
            for row in self.rows:
                present.update(row.keys())
            columns = [c for c in preferred if c in present]
            columns += [c for c in sorted(present) if c not in columns][:4]
        header = list(columns)
        lines: List[List[str]] = [header]
        for row in self.rows:
            cells = []
            for column in header:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append(f"{value:.{precision}f}")
                else:
                    cells.append(str(value))
            lines.append(cells)
        widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
        rendered = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in lines]
        separator = "  ".join("-" * width for width in widths)
        title = f"== {self.name} — {self.description} =="
        return "\n".join([title, rendered[0], separator] + rendered[1:])

    #: Row columns that are never reproducible across runs (wall-clock).
    NONDETERMINISTIC_COLUMNS = ("seconds",)

    def comparable_rows(self) -> List[Dict[str, Any]]:
        """Rows with the non-reproducible (wall-clock) columns removed.

        Two runs of the same plan — serial, parallel, or on another machine
        — must agree on these rows exactly; the equivalence tests and the
        parallel-sweep benchmark compare them.
        """
        return [
            {
                key: value
                for key, value in row.items()
                if key not in self.NONDETERMINISTIC_COLUMNS
            }
            for row in self.rows
        ]

    # -- persistence ----------------------------------------------------- #
    FORMAT = "repro.experiment-result.v1"

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Self-describing JSON dump of the full result table.

        NumPy scalars and arrays are converted to plain Python values, so
        parallel runs and CI benchmarks can persist tables without custom
        encoders.  Round-trips through :meth:`from_json` (with arrays coming
        back as lists, and non-string dict keys as strings — the JSON
        object-key limitation).
        """
        payload = {
            "format": self.FORMAT,
            "name": self.name,
            "description": self.description,
            "parameters": _jsonify(self.parameters),
            "rows": _jsonify(self.rows),
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild an :class:`ExperimentResult` from a :meth:`to_json` dump."""
        payload = json.loads(text)
        if payload.get("format") != cls.FORMAT:
            raise ValueError(
                f"not an experiment-result dump (format={payload.get('format')!r}, "
                f"expected {cls.FORMAT!r})"
            )
        return cls(
            name=payload["name"],
            description=payload["description"],
            rows=list(payload.get("rows", [])),
            parameters=dict(payload.get("parameters", {})),
        )


def _jsonify(value: Any) -> Any:
    """Recursively convert NumPy containers/scalars to JSON-serializable values."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _execute_with_progress(
    executor: Executor,
    plan: SweepPlan,
    progress: Optional[Callable[[JobResult], None]],
) -> List[JobResult]:
    """Run ``plan`` on ``executor``, invoking ``progress`` per finished job.

    With a progress callback the streaming ``iter_run`` path is used so the
    callback fires as each job *finishes* (resumed checkpoints included) —
    not after the whole sweep.  Executors without ``iter_run`` still work:
    the callback then fires per job once the batch returns.
    """
    if progress is None:
        return executor.run(plan)
    iter_run = getattr(executor, "iter_run", None)
    if iter_run is None:
        job_results = executor.run(plan)
        for job_result in job_results:
            progress(job_result)
        return job_results
    job_results = []
    for job_result in iter_run(plan):
        progress(job_result)
        job_results.append(job_result)
    return job_results


def run_plan(
    plan: SweepPlan,
    executor: Optional[Executor] = None,
    *,
    store: Optional[Any] = None,
    progress: Optional[Callable[[JobResult], None]] = None,
) -> ExperimentResult:
    """Execute a compiled :class:`SweepPlan` and aggregate rows per sweep point.

    The executor (default: a fresh :class:`SerialExecutor`) returns one
    :class:`JobResult` per job; rows are averaged over repetitions and
    emitted in plan order — value-major, then line-up order — regardless of
    how the executor scheduled the jobs.  Per-job execution provenance (LP
    solve/hit counters, worker PID, wall time) is kept under
    ``parameters["job_provenance"]``.

    ``store`` optionally names a persistent
    :class:`repro.store.ArtifactStore`: LP relaxation solves are reused
    across invocations and finished jobs are checkpointed for resume (see
    the executor docs).  It is bound to the default executor, or — for this
    run only — to a passed executor that does not already carry one (an
    executor's own store always wins; executors without store support
    raise rather than silently ignoring the argument).

    ``progress`` optionally names a callback invoked with each
    :class:`JobResult` as it finishes (the executor's streaming ``iter_run``
    path is used, so completion order — not plan order — drives the calls).
    A :class:`~repro.experiments.progress.ProgressAggregator` or
    :class:`~repro.experiments.progress.LiveDashboard` drops straight in.
    """
    if executor is None:
        executor = SerialExecutor(store=store)
        job_results = _execute_with_progress(executor, plan, progress)
    elif store is not None and getattr(executor, "store", None) is None:
        if not hasattr(executor, "store"):
            raise TypeError(
                f"executor {type(executor).__name__} does not support store=; "
                "construct it with the store or omit the argument"
            )
        if getattr(executor, "artifact_store", None) or getattr(
            executor, "collect_artifacts", False
        ):
            raise ValueError(
                "executor already carries in-memory artifact options; "
                "construct it with store= instead of binding one here"
            )
        executor.store = store
        try:
            job_results = _execute_with_progress(executor, plan, progress)
        finally:
            executor.store = None
    else:
        job_results = _execute_with_progress(executor, plan, progress)
    by_index: Dict[int, JobResult] = {jr.job_index: jr for jr in job_results}
    missing = [job.index for job in plan.jobs if job.index not in by_index]
    if missing:
        raise RuntimeError(
            f"executor {type(executor).__name__} returned no result for "
            f"job(s) {missing} of plan {plan.name!r}; refusing to aggregate a "
            "partial table"
        )

    result = ExperimentResult(
        name=plan.name,
        description=plan.description,
        # Copy list-valued parameters so annotating a result table never
        # mutates the plan it came from.
        parameters={
            key: list(value) if isinstance(value, list) else value
            for key, value in plan.parameters.items()
        },
    )
    # Group by the jobs' own value indices (not range(len(values))): subset
    # plans keep original indices, so sweep points survive slicing intact.
    for value_index in sorted({job.value_index for job in plan.jobs}):
        jobs = [job for job in plan.jobs if job.value_index == value_index]
        jobs.sort(key=lambda job: job.rep)
        columns = dict(jobs[0].columns)
        for alg in jobs[0].algorithm_names:
            reports = [by_index[job.index].reports[alg] for job in jobs]
            averaged = _average_reports(reports)
            averaged.update(columns)
            averaged["algorithm"] = alg
            result.rows.append(averaged)
    result.parameters["job_provenance"] = [jr.provenance for jr in job_results]
    return result


def sweep(
    name: str,
    description: str,
    values: Iterable[Any],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
    executor: Optional[Executor] = None,
    store: Optional[Any] = None,
    progress: Optional[Callable[[JobResult], None]] = None,
    bindings: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> ExperimentResult:
    """Run every algorithm over a one-dimensional parameter sweep.

    ``instance_factory(value, rep_seed)`` must return the instance for one
    sweep point and repetition; metric rows are averaged over repetitions.
    The sweep is first compiled into a :class:`SweepPlan` of picklable jobs
    and then handed to ``executor`` (default: serial; pass a
    :class:`~repro.experiments.executor.ParallelExecutor` to fan out over a
    process pool — the table is identical either way).  ``store`` threads a
    persistent artifact store through the run (LP reuse across invocations
    plus job checkpoints; see :func:`run_plan`); ``progress`` streams each
    finished :class:`JobResult` to a callback (see :func:`run_plan` and
    :mod:`repro.experiments.progress`); ``bindings`` maps algorithm names
    to ``{kwarg: column label}`` records so the sweep coordinate can drive
    an algorithm parameter.
    """
    plan = compile_sweep(
        name,
        description,
        values,
        instance_factory,
        algorithms,
        seed=seed,
        repetitions=repetitions,
        x_label=x_label,
        bindings=bindings,
    )
    return run_plan(plan, executor, store=store, progress=progress)


def grid(
    name: str,
    description: str,
    x_values: Iterable[Any],
    y_values: Iterable[Any],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
    y_label: str = "y",
    executor: Optional[Executor] = None,
    store: Optional[Any] = None,
    progress: Optional[Callable[[JobResult], None]] = None,
    bindings: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> ExperimentResult:
    """Run every algorithm over a two-dimensional parameter grid.

    The factory receives each grid point as one ``(x, y)`` tuple:
    ``instance_factory((x, y), rep_seed)``.  Rows carry both coordinates
    (``x_label``/``y_label`` plus the generic ``x``/``y``), so
    :meth:`ExperimentResult.pivot` can build heat-map style tables.
    ``store``, ``progress`` and ``bindings`` behave exactly as in
    :func:`sweep`.
    """
    plan = compile_grid(
        name,
        description,
        x_values,
        y_values,
        instance_factory,
        algorithms,
        seed=seed,
        repetitions=repetitions,
        x_label=x_label,
        y_label=y_label,
        bindings=bindings,
    )
    return run_plan(plan, executor, store=store, progress=progress)


def _average_reports(reports: Sequence[EvaluationReport]) -> Dict[str, Any]:
    """Average the numeric columns of several evaluation reports."""
    rows = [report.as_row() for report in reports]
    averaged: Dict[str, Any] = {}
    for key in rows[0]:
        values = [row[key] for row in rows]
        if all(isinstance(v, (int, float, bool, np.floating, np.integer)) for v in values):
            averaged[key] = float(np.mean([float(v) for v in values]))
        else:
            averaged[key] = values[0]
    averaged["repetitions"] = len(rows)
    return averaged


__all__ = [
    "AlgorithmRunner",
    "default_algorithms",
    "run_algorithms",
    "ExperimentResult",
    "run_plan",
    "sweep",
    "grid",
    "evaluation_table",
]
