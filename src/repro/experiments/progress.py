"""Streaming sweep progress: live aggregation, completion counts, cost-model ETA.

The executors (:mod:`repro.experiments.executor`,
:mod:`repro.experiments.scheduler`) stream finished jobs through
``iter_run`` long before the full table exists.  This module turns that
stream into something watchable:

* :class:`ProgressAggregator` consumes :class:`JobResult` objects as they
  arrive and maintains (a) an *incremental* :class:`ExperimentResult` —
  the same rows :func:`~repro.experiments.harness.run_plan` would emit,
  averaged over the repetitions that have finished so far; (b) per-sweep-
  value completion counts; and (c) a wall-clock ETA that weights the
  remaining jobs by the scheduler's cost model instead of assuming all
  jobs are equal — on heterogeneous sweeps the last jobs are often the
  big ones, and a naive ``remaining/throughput`` estimate is wildly
  optimistic.
* :class:`LiveDashboard` is a throttled callback wrapper: pass it as
  ``progress=`` to :func:`~repro.experiments.harness.sweep` /
  :func:`~repro.experiments.harness.grid` / ``run_plan`` and it re-renders
  a plain-text dashboard to a stream at most every ``min_interval``
  seconds (plus once at the end, so the final state is always shown).

An aggregator is itself a valid ``progress=`` callback (calling it is the
same as calling :meth:`ProgressAggregator.update`), so the minimal live
setup is two lines::

    agg = ProgressAggregator(plan)
    result = run_plan(plan, executor, progress=agg)   # agg.result() trails the run
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.experiments.executor import JobResult, SweepJob, SweepPlan
from repro.experiments.scheduler import CostModel

__all__ = ["ProgressAggregator", "LiveDashboard"]


class ProgressAggregator:
    """Incremental aggregation over a stream of finished sweep jobs.

    Feed it :class:`JobResult` objects (via :meth:`update`, by calling the
    aggregator itself, or by wrapping a result iterator in :meth:`track`);
    read back completion state at any moment.  Results may arrive in any
    order and duplicates (e.g. a resumed checkpoint re-observed) are
    ignored, so the aggregator composes with every executor.

    Parameters
    ----------
    plan:
        The compiled sweep being executed; defines the job universe, the
        sweep values and the row layout of the incremental table.
    cost_model:
        Optional :class:`~repro.experiments.scheduler.CostModel` used to
        weight jobs for the ETA.  Defaults to a fresh (analytic-fallback)
        model, which still captures the instance-size skew of a
        heterogeneous sweep.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        plan: SweepPlan,
        *,
        cost_model: Optional[CostModel] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.plan = plan
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._clock = clock
        self._started = clock()
        self._finished_at: Optional[float] = None
        self._results: Dict[int, JobResult] = {}
        self._jobs: Dict[int, SweepJob] = {job.index: job for job in plan.jobs}
        self._estimates: Dict[int, float] = {
            job.index: max(1e-9, self.cost_model.estimate_job(plan, job))
            for job in plan.jobs
        }

    # -- ingestion -------------------------------------------------------- #
    def update(self, result: JobResult) -> None:
        """Record one finished job (unknown or repeated indices are ignored)."""
        index = result.job_index
        if index not in self._jobs or index in self._results:
            return
        self._results[index] = result
        if len(self._results) == len(self._jobs) and self._finished_at is None:
            self._finished_at = self._clock()

    #: Calling the aggregator is the same as calling :meth:`update`, so an
    #: aggregator can be passed directly as a ``progress=`` callback.
    def __call__(self, result: JobResult) -> None:
        self.update(result)

    def track(self, results: Iterable[JobResult]) -> Iterator[JobResult]:
        """Pass-through generator recording every result it yields."""
        for result in results:
            self.update(result)
            yield result

    # -- completion state -------------------------------------------------- #
    @property
    def total(self) -> int:
        return len(self._jobs)

    @property
    def completed(self) -> int:
        return len(self._results)

    @property
    def done(self) -> bool:
        return self.completed == self.total

    @property
    def elapsed(self) -> float:
        """Seconds since construction (frozen once the last job arrives)."""
        end = self._finished_at if self._finished_at is not None else self._clock()
        return max(0.0, end - self._started)

    def value_completion(self) -> List[Tuple[Any, int, int]]:
        """Per-sweep-value progress: ``(value, completed_jobs, total_jobs)``.

        Ordered by value index (plan order), covering every sweep point —
        including ones no job has finished for yet.
        """
        counts: Dict[int, Tuple[Any, int, int]] = {}
        for job in self.plan.jobs:
            value, done, total = counts.get(job.value_index, (job.value, 0, 0))
            counts[job.value_index] = (
                value,
                done + (1 if job.index in self._results else 0),
                total + 1,
            )
        return [counts[value_index] for value_index in sorted(counts)]

    def eta_seconds(self) -> Optional[float]:
        """Cost-weighted remaining wall time, or None before any job finishes.

        The observed rate (elapsed seconds per unit of *estimated* cost
        completed) is extrapolated over the estimated cost still pending,
        so a sweep whose big instances run last does not report a
        misleadingly early finish.
        """
        if not self._results:
            return None
        if self.done:
            return 0.0
        completed_cost = sum(self._estimates[index] for index in self._results)
        remaining_cost = sum(
            estimate
            for index, estimate in self._estimates.items()
            if index not in self._results
        )
        if completed_cost <= 0.0:
            return None
        return remaining_cost * (self.elapsed / completed_cost)

    # -- incremental table ------------------------------------------------- #
    def result(self) -> "ExperimentResult":
        """The :class:`ExperimentResult` over everything finished so far.

        Sweep points with at least one finished repetition contribute rows
        averaged over those repetitions (the ``repetitions`` column records
        how many went in); untouched points are absent.  Once every job has
        arrived the table matches :func:`~repro.experiments.harness.run_plan`
        output row for row — the equivalence tests assert it.
        """
        from repro.experiments.harness import ExperimentResult, _average_reports

        plan = self.plan
        result = ExperimentResult(
            name=plan.name,
            description=plan.description,
            parameters={
                key: list(value) if isinstance(value, list) else value
                for key, value in plan.parameters.items()
            },
        )
        for value_index in sorted({job.value_index for job in plan.jobs}):
            jobs = [
                job
                for job in plan.jobs
                if job.value_index == value_index and job.index in self._results
            ]
            if not jobs:
                continue
            jobs.sort(key=lambda job: job.rep)
            columns = dict(jobs[0].columns)
            for alg in jobs[0].algorithm_names:
                reports = [self._results[job.index].reports[alg] for job in jobs]
                averaged = _average_reports(reports)
                averaged.update(columns)
                averaged["algorithm"] = alg
                result.rows.append(averaged)
        result.parameters["progress"] = {
            "completed_jobs": self.completed,
            "total_jobs": self.total,
        }
        return result

    # -- rendering --------------------------------------------------------- #
    def render(self) -> str:
        """Plain-text dashboard: overall bar, ETA, per-value completion."""
        fraction = self.completed / self.total if self.total else 1.0
        bar_width = 24
        filled = int(round(fraction * bar_width))
        bar = "#" * filled + "-" * (bar_width - filled)
        eta = self.eta_seconds()
        if self.done:
            eta_text = "done"
        elif eta is None:
            eta_text = "eta --"
        else:
            eta_text = f"eta {eta:.1f}s"
        lines = [
            f"{self.plan.name}: [{bar}] {self.completed}/{self.total} jobs "
            f"({fraction * 100.0:.0f}%)  elapsed {self.elapsed:.1f}s  {eta_text}"
        ]
        for value, done, total in self.value_completion():
            marker = "✓" if done == total else " "
            lines.append(f"  {marker} {value!r}: {done}/{total}")
        return "\n".join(lines)


class LiveDashboard:
    """Throttled ``progress=`` callback rendering a text dashboard to a stream.

    Wraps a :class:`ProgressAggregator` and re-renders on update, but at
    most once per ``min_interval`` seconds — a parallel sweep finishing
    hundreds of cheap jobs should not flood the terminal.  The final
    update (last job of the plan) always renders, so the completed state
    is never throttled away.  The underlying aggregator is exposed as
    ``.aggregator`` for reading the incremental table afterwards.
    """

    def __init__(
        self,
        plan: SweepPlan,
        *,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
        cost_model: Optional[CostModel] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.aggregator = ProgressAggregator(plan, cost_model=cost_model, clock=clock)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._clock = clock
        self._last_render: Optional[float] = None
        self.renders = 0

    def __call__(self, result: JobResult) -> None:
        self.aggregator.update(result)
        now = self._clock()
        throttled = (
            self._last_render is not None
            and (now - self._last_render) < self.min_interval
        )
        if throttled and not self.aggregator.done:
            return
        self._last_render = now
        self.renders += 1
        print(self.aggregator.render(), file=self.stream, flush=True)
