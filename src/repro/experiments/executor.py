"""Declarative sweep plans and pluggable (serial / process-pool) executors.

The experiment layer separates *what* a sweep runs from *how* it runs:

* :func:`compile_sweep` / :func:`compile_grid` turn a parameter sweep into a
  :class:`SweepPlan` — a list of picklable :class:`SweepJob` records (sweep
  value, repetition, derived seed, and the algorithm line-up resolved to
  :class:`~repro.core.registry.AlgorithmPayload` name+kwargs records, not
  closures).  A plan can be inspected (:meth:`SweepPlan.describe`), sliced
  (:meth:`SweepPlan.subset`) and shipped to worker processes.
* Executors run a plan's jobs and return :class:`JobResult` rows.
  :class:`SerialExecutor` executes in plan order in-process;
  :class:`ParallelExecutor` fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`, chunking by sweep value so
  every repetition/algorithm of one instance stays on one worker (preserving
  the per-instance :class:`~repro.core.pipeline.SolveContext` LP reuse) and
  reassembling results deterministically by job index regardless of
  completion order.  Workers rehydrate the algorithm registry simply by
  importing it — registration is an import-time side effect of the provider
  modules.
* Both executors thread an **artifact store** (instance fingerprint →
  :class:`~repro.core.pipeline.ContextArtifacts`) through their jobs: when a
  factory rebuilds an identical instance for another repetition, the LP
  fractional solutions and weighted tensors are rehydrated instead of
  recomputed, in-process and across process boundaries alike (shipping
  worker artifacts back to the parent is opt-in —
  ``ParallelExecutor(collect_artifacts=True)`` — since sweeps with a fresh
  instance per job can never reuse them).

Seeding is order-independent by construction: each job derives its
repetition seed from ``(sweep name, value, rep)`` and each algorithm run
derives its generator from ``(rep seed, algorithm name)``, so a serial run
and any parallel schedule of the same plan produce identical tables.
:func:`repro.experiments.harness.sweep` is a thin wrapper: compile, execute,
aggregate.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.core.pipeline import ContextArtifacts, SolveContext
from repro.core.problem import SVGICInstance
from repro.core.registry import AlgorithmPayload, AlgorithmRunner, runner_payloads
from repro.metrics.evaluation import EvaluationReport, evaluate_result
from repro.utils.rng import SeedLike, derive_seed, ensure_rng

InstanceFactory = Callable[[Any, int], SVGICInstance]

#: Artifact stores map instance fingerprints to exported context artifacts.
ArtifactStore = MutableMapping[str, ContextArtifacts]


# --------------------------------------------------------------------------- #
# Jobs and plans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work: one instance (sweep value × repetition).

    Jobs are pure data — picklable, inspectable, and independent of the plan
    that produced them.  ``columns`` carries the sweep-point labels merged
    into every result row of this job (e.g. ``{"n": 100, "x": 100}``).
    """

    index: int
    value: Any
    value_index: int
    rep: int
    rep_seed: int
    algorithms: Tuple[AlgorithmPayload, ...]
    columns: Mapping[str, Any] = field(default_factory=dict)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return tuple(payload.display_name for payload in self.algorithms)


@dataclass
class SweepPlan:
    """A compiled experiment: metadata plus the full job list.

    ``values`` keeps the distinct sweep points in presentation order;
    ``jobs`` holds one :class:`SweepJob` per (value, repetition) pair.
    """

    name: str
    description: str
    instance_factory: InstanceFactory
    jobs: List[SweepJob]
    values: List[Any]
    repetitions: int
    x_label: str = "x"
    y_label: Optional[str] = None
    parameters: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return self.jobs[0].algorithm_names if self.jobs else ()

    def subset(self, indices: Iterable[int]) -> "SweepPlan":
        """A plan restricted to the jobs with the given ``index`` values.

        Kept jobs retain their original ``index``/``value_index``, so
        aggregated tables line up with the parent plan; the plan metadata
        (``values``, ``parameters``) is rebuilt to describe only what is
        actually left.
        """
        wanted = set(int(i) for i in indices)
        jobs = [job for job in self.jobs if job.index in wanted]
        # Recover kept values from the jobs themselves (their value_index is
        # the original compile's numbering), so subsets compose.
        by_value_index: Dict[int, Any] = {}
        for job in jobs:
            by_value_index.setdefault(job.value_index, job.value)
        kept_values = [by_value_index[vi] for vi in sorted(by_value_index)]
        parameters = dict(self.parameters)
        if "values" in parameters:
            parameters["values"] = kept_values
        if "x_values" in parameters:  # grid plans: values are (x, y) pairs
            parameters["x_values"] = [
                x for x in parameters["x_values"]
                if any(value[0] == x for value in kept_values)
            ]
        if "y_values" in parameters:
            parameters["y_values"] = [
                y for y in parameters["y_values"]
                if any(value[1] == y for value in kept_values)
            ]
        parameters["subset_of_jobs"] = len(self.jobs)
        return replace(self, jobs=jobs, values=kept_values, parameters=parameters)

    def describe(self) -> str:
        """Human-readable plan summary (what would run, before running it)."""
        lines = [
            f"plan {self.name!r}: {len(self.jobs)} job(s) over "
            f"{len(self.values)} value(s), {self.repetitions} repetition(s)",
            f"  algorithms: {', '.join(self.algorithm_names) or '(none)'}",
        ]
        labels = [self.x_label] + ([self.y_label] if self.y_label else [])
        for job in self.jobs:
            point = " ".join(
                f"{label}={job.columns.get(label, job.value)!r}" for label in labels
            )
            lines.append(
                f"  job {job.index}: {point} rep={job.rep} seed={job.rep_seed}"
            )
        return "\n".join(lines)


@dataclass
class JobResult:
    """Evaluated reports of one job plus execution provenance.

    ``reports`` is keyed by algorithm display name in line-up order;
    ``provenance`` records the job identity, the worker PID, wall time and
    the :class:`SolveContext` LP counters (``lp_solves``, ``lp_hits``,
    ``lp_artifact_hits``) so schedulers and benchmarks can assert the
    one-LP-solve-per-instance property.
    """

    job_index: int
    reports: Dict[str, EvaluationReport]
    provenance: Dict[str, Any] = field(default_factory=dict)


def compile_sweep(
    name: str,
    description: str,
    values: Iterable[Any],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
) -> SweepPlan:
    """Compile a one-dimensional sweep into a :class:`SweepPlan`.

    ``instance_factory(value, rep_seed)`` must return the instance for one
    sweep point and repetition; the seed derivation matches the historical
    ``sweep()`` loop (``derive_seed(seed, name, str(value), rep)``), so
    compiled plans reproduce pre-plan experiment tables.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    values = list(values)
    payloads = runner_payloads(algorithms)
    jobs: List[SweepJob] = []
    for value_index, value in enumerate(values):
        for rep in range(repetitions):
            jobs.append(
                SweepJob(
                    index=len(jobs),
                    value=value,
                    value_index=value_index,
                    rep=rep,
                    rep_seed=derive_seed(seed, name, str(value), rep),
                    algorithms=payloads,
                    columns={x_label: value, "x": value},
                )
            )
    return SweepPlan(
        name=name,
        description=description,
        instance_factory=instance_factory,
        jobs=jobs,
        values=values,
        repetitions=repetitions,
        x_label=x_label,
        parameters={"values": list(values), "repetitions": repetitions},
    )


def compile_grid(
    name: str,
    description: str,
    x_values: Iterable[Any],
    y_values: Iterable[Any],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
    y_label: str = "y",
) -> SweepPlan:
    """Compile a two-dimensional sweep (every ``(x, y)`` combination).

    The factory receives the point as one value: ``instance_factory((x, y),
    rep_seed)``.  Result rows carry both labelled coordinates plus the
    generic ``x`` / ``y`` columns used by the pivot helpers.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    x_values, y_values = list(x_values), list(y_values)
    points = [(x, y) for x in x_values for y in y_values]
    payloads = runner_payloads(algorithms)
    jobs: List[SweepJob] = []
    for value_index, (x, y) in enumerate(points):
        for rep in range(repetitions):
            jobs.append(
                SweepJob(
                    index=len(jobs),
                    value=(x, y),
                    value_index=value_index,
                    rep=rep,
                    rep_seed=derive_seed(seed, name, str(x), str(y), rep),
                    algorithms=payloads,
                    columns={x_label: x, y_label: y, "x": x, "y": y},
                )
            )
    return SweepPlan(
        name=name,
        description=description,
        instance_factory=instance_factory,
        jobs=jobs,
        values=points,
        repetitions=repetitions,
        x_label=x_label,
        y_label=y_label,
        parameters={
            "x_values": list(x_values),
            "y_values": list(y_values),
            "repetitions": repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Job execution (shared by every executor and by the worker processes)
# --------------------------------------------------------------------------- #
def run_algorithms(
    instance: SVGICInstance,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = None,
    context: Optional[SolveContext] = None,
) -> Dict[str, EvaluationReport]:
    """Run every algorithm on ``instance`` and evaluate all Section-6 metrics.

    One :class:`SolveContext` (created here unless supplied) is shared by
    all context-aware runners, so redundant LP relaxation solves are
    eliminated across the line-up.  Legacy runners — plain callables without
    the ``accepts_context`` marker — are still invoked as
    ``runner(instance, rng=...)``.

    Each algorithm draws from its own generator seeded by
    ``derive_seed(seed, name)``.  (Compatibility note: earlier versions
    threaded one shared generator sequentially through the line-up, which
    made stochastic results depend on dictionary insertion order; the
    per-algorithm derivation is order-independent — required for
    serial ≡ parallel sweep equivalence — so randomized algorithms return
    different, equally valid draws than they did under the old scheme.)

    This is the single dispatch loop for the whole experiment layer:
    :func:`run_job` (and therefore every executor) routes through it, so
    serial and parallel sweeps cannot drift apart.
    """
    if isinstance(seed, (int, np.integer)):
        base_seed = int(seed)
    else:
        base_seed = int(ensure_rng(seed).integers(0, 2**31 - 1))
    if context is None:
        context = SolveContext(instance)
    reports: Dict[str, EvaluationReport] = {}
    for name, runner in algorithms.items():
        generator = ensure_rng(derive_seed(base_seed, name))
        if getattr(runner, "accepts_context", False):
            result = runner(instance, rng=generator, context=context)
        else:
            result = runner(instance, rng=generator)
        reports[name] = evaluate_result(instance, result)
    return reports


def run_job(
    instance_factory: InstanceFactory,
    job: SweepJob,
    artifact_store: Optional[ArtifactStore] = None,
) -> JobResult:
    """Build the job's instance, rehydrate its runners, dispatch the line-up.

    One :class:`SolveContext` is shared by all of the job's context-aware
    runners; if ``artifact_store`` holds artifacts for the instance's
    fingerprint the context is rehydrated from them (and the store is
    refreshed with this job's artifacts afterwards).  Dispatch happens
    through :func:`run_algorithms`, so each algorithm draws from its own
    ``derive_seed(rep_seed, name)`` generator and results do not depend on
    line-up order or scheduling.
    """
    started = time.perf_counter()
    instance = instance_factory(job.value, job.rep_seed)
    context = SolveContext(instance)
    if artifact_store is not None:
        artifacts = artifact_store.get(context.fingerprint)
        if artifacts is not None:
            context.adopt_artifacts(artifacts)

    runners = {
        payload.display_name: payload.rehydrate() for payload in job.algorithms
    }
    reports = run_algorithms(instance, runners, seed=job.rep_seed, context=context)

    if artifact_store is not None and (
        context.lp_solves > 0 or context.fingerprint not in artifact_store
    ):
        # Write back only when this job computed something new — pure-hit
        # jobs leave the stored entry untouched, so executors can tell fresh
        # artifacts from already-known ones by identity.
        artifact_store[context.fingerprint] = context.export_artifacts()

    provenance: Dict[str, Any] = {
        "job_index": job.index,
        "value": job.value,
        "rep": job.rep,
        "pid": os.getpid(),
        "seconds": time.perf_counter() - started,
    }
    provenance.update(context.stats())
    return JobResult(job_index=job.index, reports=reports, provenance=provenance)


#: Per-worker artifact seed, installed once by the pool initializer so a
#: store with many entries is pickled per *worker*, not per chunk.
_WORKER_SEED_ARTIFACTS: Dict[str, ContextArtifacts] = {}


def _seed_worker_artifacts(seed_artifacts: Optional[Dict[str, ContextArtifacts]]) -> None:
    global _WORKER_SEED_ARTIFACTS
    _WORKER_SEED_ARTIFACTS = dict(seed_artifacts or {})


def _run_job_group(
    instance_factory: InstanceFactory,
    jobs: Tuple[SweepJob, ...],
    collect_artifacts: bool,
) -> Tuple[List[JobResult], Dict[str, ContextArtifacts]]:
    """Worker entry point: run one chunk of jobs with a chunk-local store.

    Module-level so it imports cleanly under both ``fork`` and ``spawn``
    start methods; importing this module (and, transitively, the registry on
    first dispatch) rehydrates all algorithm registrations in the worker.
    The store starts from the worker-level seed; only artifacts this chunk
    computed (or refreshed) are shipped back — seeded entries the parent
    already holds would be pure return traffic.
    """
    seeded = _WORKER_SEED_ARTIFACTS
    store: Dict[str, ContextArtifacts] = dict(seeded)
    results = [run_job(instance_factory, job, store) for job in jobs]
    if not collect_artifacts:
        return results, {}
    fresh = {
        fingerprint: artifacts
        for fingerprint, artifacts in store.items()
        if seeded.get(fingerprint) is not artifacts
    }
    return results, fresh


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
@runtime_checkable
class Executor(Protocol):
    """Anything that can run a :class:`SweepPlan` and return its job results."""

    def run(self, plan: SweepPlan) -> List[JobResult]:
        ...


class SerialExecutor:
    """Run every job in plan order, in-process — the default executor.

    Behaviour matches the historical ``sweep()`` loop; the only addition is
    the artifact store, which lets repetitions that rebuild an identical
    instance reuse its LP solutions (a pure cache: the LP solver is
    deterministic, so results are unchanged).
    """

    def __init__(self, artifact_store: Optional[ArtifactStore] = None) -> None:
        self.artifact_store: ArtifactStore = (
            artifact_store if artifact_store is not None else {}
        )

    def run(self, plan: SweepPlan) -> List[JobResult]:
        return [
            run_job(plan.instance_factory, job, self.artifact_store)
            for job in plan.jobs
        ]


class ParallelExecutor:
    """Fan a plan out over a process pool; results are order-independent.

    Jobs are chunked by sweep value (all repetitions of one sweep point form
    one chunk) so each instance's repetitions share a worker-local artifact
    store — the per-instance LP reuse of :class:`SolveContext` survives the
    fan-out.  Completed chunks are reassembled by job index, so the returned
    list (and therefore every aggregated table) is identical to a serial
    run's regardless of worker scheduling.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` still goes through the pool (useful for testing
        the pickling path).
    collect_artifacts:
        When True, worker artifact stores are shipped back and merged into
        :attr:`artifact_store`, so a later plan run through this executor
        (or a :class:`SerialExecutor` sharing the store) reuses them across
        the process boundary.  Off by default: artifacts embed the dense
        weighted tensors, and sweeps whose factories derive a fresh
        instance per repetition can never hit them — opt in when instances
        repeat across jobs or runs.  (Worker-local reuse *within* a chunk
        is always on and needs no collection.)
    mp_context:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        collect_artifacts: bool = False,
        artifact_store: Optional[ArtifactStore] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.collect_artifacts = collect_artifacts
        self.artifact_store: ArtifactStore = (
            artifact_store if artifact_store is not None else {}
        )
        self.mp_context = mp_context

    def _chunks(self, plan: SweepPlan) -> List[Tuple[SweepJob, ...]]:
        grouped: Dict[int, List[SweepJob]] = {}
        for job in plan.jobs:
            grouped.setdefault(job.value_index, []).append(job)
        return [tuple(grouped[key]) for key in sorted(grouped)]

    def run(self, plan: SweepPlan) -> List[JobResult]:
        chunks = self._chunks(plan)
        if not chunks:
            return []
        seed_artifacts = dict(self.artifact_store) if self.artifact_store else None
        mp_ctx = None
        if self.mp_context is not None:
            import multiprocessing

            mp_ctx = multiprocessing.get_context(self.mp_context)
        results: List[JobResult] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            mp_context=mp_ctx,
            initializer=_seed_worker_artifacts,
            initargs=(seed_artifacts,),
        ) as pool:
            futures = [
                pool.submit(
                    _run_job_group,
                    plan.instance_factory,
                    chunk,
                    self.collect_artifacts,
                )
                for chunk in chunks
            ]
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk_results, artifacts = future.result()
                    results.extend(chunk_results)
                    if self.collect_artifacts:
                        self.artifact_store.update(artifacts)
        results.sort(key=lambda result: result.job_index)
        return results


__all__ = [
    "SweepJob",
    "SweepPlan",
    "JobResult",
    "InstanceFactory",
    "ArtifactStore",
    "compile_sweep",
    "compile_grid",
    "run_algorithms",
    "run_job",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
]
