"""Declarative sweep plans and pluggable (serial / process-pool) executors.

The experiment layer separates *what* a sweep runs from *how* it runs:

* :func:`compile_sweep` / :func:`compile_grid` turn a parameter sweep into a
  :class:`SweepPlan` — a list of picklable :class:`SweepJob` records (sweep
  value, repetition, derived seed, and the algorithm line-up resolved to
  :class:`~repro.core.registry.AlgorithmPayload` name+kwargs records, not
  closures).  A plan can be inspected (:meth:`SweepPlan.describe`), sliced
  (:meth:`SweepPlan.subset`) and shipped to worker processes.
* Executors run a plan's jobs and return :class:`JobResult` rows.
  :class:`SerialExecutor` executes in plan order in-process;
  :class:`ParallelExecutor` fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`, chunking by sweep value so
  every repetition/algorithm of one instance stays on one worker (preserving
  the per-instance :class:`~repro.core.pipeline.SolveContext` LP reuse) and
  reassembling results deterministically by job index regardless of
  completion order.  Workers rehydrate the algorithm registry simply by
  importing it — registration is an import-time side effect of the provider
  modules.
* Both executors thread an **artifact store** (instance fingerprint →
  :class:`~repro.core.pipeline.ContextArtifacts`) through their jobs: when a
  factory rebuilds an identical instance for another repetition, the LP
  fractional solutions and weighted tensors are rehydrated instead of
  recomputed, in-process and across process boundaries alike (shipping
  worker artifacts back to the parent is opt-in —
  ``ParallelExecutor(collect_artifacts=True)`` — since sweeps with a fresh
  instance per job can never reuse them).
* Execution is **streaming and resumable**: :meth:`Executor.iter_run` yields
  :class:`JobResult` records as jobs finish (completion order, not plan
  order) and ``run()`` is a thin deterministic-reorder wrapper over the
  stream.  With a persistent ``store=``
  (:class:`repro.store.ArtifactStore`), every finished job is checkpointed
  under the plan's scope signature (:func:`plan_signature`) and its own
  content key (:func:`job_checkpoint_key`) the moment it completes, each
  job's :class:`~repro.core.pipeline.SolveContext` consults
  the store for LP solutions before solving (``lp_store_hits`` in the
  provenance counts reuses across invocations), and a re-run of the same
  plan resumes from the persisted results — an interrupted sweep completes
  only its unfinished jobs.

Seeding is order-independent by construction: each job derives its
repetition seed from ``(sweep name, value, rep)`` and each algorithm run
derives its generator from ``(rep seed, algorithm name)``, so a serial run
and any parallel schedule of the same plan produce identical tables.
:func:`repro.experiments.harness.sweep` is a thin wrapper: compile, execute,
aggregate.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.core.pipeline import ContextArtifacts, SolveContext
from repro.core.problem import SVGICInstance
from repro.core.registry import AlgorithmPayload, AlgorithmRunner, runner_payloads
from repro.metrics.evaluation import EvaluationReport, evaluate_result
from repro.utils.rng import SeedLike, derive_seed, ensure_rng

InstanceFactory = Callable[[Any, int], SVGICInstance]

#: Artifact stores map instance fingerprints to exported context artifacts.
ArtifactStore = MutableMapping[str, ContextArtifacts]


# --------------------------------------------------------------------------- #
# Jobs and plans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work: one instance (sweep value × repetition).

    Jobs are pure data — picklable, inspectable, and independent of the plan
    that produced them.  ``columns`` carries the sweep-point labels merged
    into every result row of this job (e.g. ``{"n": 100, "x": 100}``).
    """

    index: int
    value: Any
    value_index: int
    rep: int
    rep_seed: int
    algorithms: Tuple[AlgorithmPayload, ...]
    columns: Mapping[str, Any] = field(default_factory=dict)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return tuple(payload.display_name for payload in self.algorithms)


@dataclass
class SweepPlan:
    """A compiled experiment: metadata plus the full job list.

    ``values`` keeps the distinct sweep points in presentation order;
    ``jobs`` holds one :class:`SweepJob` per (value, repetition) pair.
    """

    name: str
    description: str
    instance_factory: InstanceFactory
    jobs: List[SweepJob]
    values: List[Any]
    repetitions: int
    x_label: str = "x"
    y_label: Optional[str] = None
    parameters: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return self.jobs[0].algorithm_names if self.jobs else ()

    def subset(self, indices: Iterable[int]) -> "SweepPlan":
        """A plan restricted to the jobs with the given ``index`` values.

        Kept jobs retain their original ``index``/``value_index``, so
        aggregated tables line up with the parent plan; the plan metadata
        (``values``, ``parameters``) is rebuilt to describe only what is
        actually left.
        """
        wanted = set(int(i) for i in indices)
        jobs = [job for job in self.jobs if job.index in wanted]
        # Recover kept values from the jobs themselves (their value_index is
        # the original compile's numbering), so subsets compose.
        by_value_index: Dict[int, Any] = {}
        for job in jobs:
            by_value_index.setdefault(job.value_index, job.value)
        kept_values = [by_value_index[vi] for vi in sorted(by_value_index)]
        parameters = dict(self.parameters)
        if "values" in parameters:
            parameters["values"] = kept_values
        if "x_values" in parameters:  # grid plans: values are (x, y) pairs
            parameters["x_values"] = [
                x for x in parameters["x_values"]
                if any(value[0] == x for value in kept_values)
            ]
        if "y_values" in parameters:
            parameters["y_values"] = [
                y for y in parameters["y_values"]
                if any(value[1] == y for value in kept_values)
            ]
        parameters["subset_of_jobs"] = len(self.jobs)
        return replace(self, jobs=jobs, values=kept_values, parameters=parameters)

    def describe(self) -> str:
        """Human-readable plan summary (what would run, before running it)."""
        lines = [
            f"plan {self.name!r}: {len(self.jobs)} job(s) over "
            f"{len(self.values)} value(s), {self.repetitions} repetition(s)",
            f"  algorithms: {', '.join(self.algorithm_names) or '(none)'}",
        ]
        labels = [self.x_label] + ([self.y_label] if self.y_label else [])
        for job in self.jobs:
            point = " ".join(
                f"{label}={job.columns.get(label, job.value)!r}" for label in labels
            )
            lines.append(
                f"  job {job.index}: {point} rep={job.rep} seed={job.rep_seed}"
            )
        return "\n".join(lines)


@dataclass
class JobResult:
    """Evaluated reports of one job plus execution provenance.

    ``reports`` is keyed by algorithm display name in line-up order;
    ``provenance`` records the job identity, the worker PID, wall time and
    the :class:`SolveContext` LP counters (``lp_solves``, ``lp_hits``,
    ``lp_artifact_hits``) so schedulers and benchmarks can assert the
    one-LP-solve-per-instance property.
    """

    job_index: int
    reports: Dict[str, EvaluationReport]
    provenance: Dict[str, Any] = field(default_factory=dict)


def compile_sweep(
    name: str,
    description: str,
    values: Iterable[Any],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
    bindings: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> SweepPlan:
    """Compile a one-dimensional sweep into a :class:`SweepPlan`.

    ``instance_factory(value, rep_seed)`` must return the instance for one
    sweep point and repetition; the seed derivation matches the historical
    ``sweep()`` loop (``derive_seed(seed, name, str(value), rep)``), so
    compiled plans reproduce pre-plan experiment tables.  ``bindings``
    optionally maps algorithm display names to ``{kwarg: column label}``
    records resolved per job (see
    :class:`~repro.core.registry.AlgorithmPayload`), which lets a sweep scan
    an algorithm parameter instead of an instance dimension.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    values = list(values)
    payloads = runner_payloads(algorithms, bindings)
    jobs: List[SweepJob] = []
    for value_index, value in enumerate(values):
        for rep in range(repetitions):
            jobs.append(
                SweepJob(
                    index=len(jobs),
                    value=value,
                    value_index=value_index,
                    rep=rep,
                    rep_seed=derive_seed(seed, name, str(value), rep),
                    algorithms=payloads,
                    columns={x_label: value, "x": value},
                )
            )
    return SweepPlan(
        name=name,
        description=description,
        instance_factory=instance_factory,
        jobs=jobs,
        values=values,
        repetitions=repetitions,
        x_label=x_label,
        parameters={"values": list(values), "repetitions": repetitions},
    )


def compile_grid(
    name: str,
    description: str,
    x_values: Iterable[Any],
    y_values: Iterable[Any],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = 0,
    repetitions: int = 1,
    x_label: str = "x",
    y_label: str = "y",
    bindings: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> SweepPlan:
    """Compile a two-dimensional sweep (every ``(x, y)`` combination).

    The factory receives the point as one value: ``instance_factory((x, y),
    rep_seed)``.  Result rows carry both labelled coordinates plus the
    generic ``x`` / ``y`` columns used by the pivot helpers.  ``bindings``
    resolves algorithm kwargs from those columns per job, exactly as in
    :func:`compile_sweep`.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    x_values, y_values = list(x_values), list(y_values)
    points = [(x, y) for x in x_values for y in y_values]
    payloads = runner_payloads(algorithms, bindings)
    jobs: List[SweepJob] = []
    for value_index, (x, y) in enumerate(points):
        for rep in range(repetitions):
            jobs.append(
                SweepJob(
                    index=len(jobs),
                    value=(x, y),
                    value_index=value_index,
                    rep=rep,
                    rep_seed=derive_seed(seed, name, str(x), str(y), rep),
                    algorithms=payloads,
                    columns={x_label: x, y_label: y, "x": x, "y": y},
                )
            )
    return SweepPlan(
        name=name,
        description=description,
        instance_factory=instance_factory,
        jobs=jobs,
        values=points,
        repetitions=repetitions,
        x_label=x_label,
        y_label=y_label,
        parameters={
            "x_values": list(x_values),
            "y_values": list(y_values),
            "repetitions": repetitions,
        },
    )


def plan_signature(plan: SweepPlan) -> str:
    """Stable hash of a plan's *scope*: the namespace its checkpoints live in.

    Covers the instance factory, plan name and axis labels — everything a
    job's own checkpoint key (:func:`job_checkpoint_key`) does not.  The
    factory enters via its ``repr`` when that is deterministic (frozen
    dataclasses), falling back to its qualified name — factories whose
    behaviour changes without either changing are indistinguishable, so
    version such factories by renaming them or bumping a field.

    Repetitions and sweep values are deliberately *not* part of the scope:
    they are captured per job, so a re-compile with more values or more
    repetitions resumes every job it shares with the earlier run and
    executes only the new ones (and :meth:`SweepPlan.subset` runs share
    checkpoints with their parent plan).
    """
    factory = plan.instance_factory
    factory_repr = repr(factory)
    if " at 0x" in factory_repr:  # default object/function repr: memory address
        factory_repr = (
            f"{getattr(factory, '__module__', type(factory).__module__)}."
            f"{getattr(factory, '__qualname__', type(factory).__qualname__)}"
        )
    digest = hashlib.sha256()
    digest.update(factory_repr.encode("utf-8"))
    digest.update(repr((plan.name, plan.x_label, plan.y_label)).encode("utf-8"))
    return digest.hexdigest()


def job_checkpoint_key(job: SweepJob) -> str:
    """Content key of one job's persistent checkpoint within a plan's scope.

    Hashes everything that determines the job's result — sweep value,
    repetition, derived seed and the full algorithm payloads (names,
    overrides, column bindings) — but *not* the job's position in the plan,
    so :meth:`SweepPlan.subset` plans and extended recompiles (more values,
    more repetitions) share checkpoints with the original run even when job
    indices shift.  Executors renumber a resumed result to the current
    plan's indices (:func:`_as_resumed`).  Two plans sharing a scope can
    only collide on a key when the jobs would compute the same thing.
    """
    payloads = tuple(
        (
            payload.display_name,
            payload.registry_name,
            tuple(sorted(payload.overrides.items())),
            tuple(sorted(payload.bind.items())),
            None
            if payload.runner is None
            else getattr(payload.runner, "__qualname__", repr(payload.runner)),
        )
        for payload in job.algorithms
    )
    return hashlib.sha256(
        repr((job.value, job.rep, job.rep_seed, payloads)).encode("utf-8")
    ).hexdigest()


def _as_resumed(cached: "JobResult", job: SweepJob) -> "JobResult":
    """Renumber a checkpointed result to the resuming plan's job index.

    The checkpoint key is position-independent, so the stored ``job_index``
    reflects the plan that *wrote* it; aggregation maps results by the
    current plan's indices.
    """
    cached.job_index = job.index
    cached.provenance["job_index"] = job.index
    cached.provenance["resumed"] = True
    return cached


# --------------------------------------------------------------------------- #
# Job execution (shared by every executor and by the worker processes)
# --------------------------------------------------------------------------- #
def run_algorithms(
    instance: SVGICInstance,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    seed: SeedLike = None,
    context: Optional[SolveContext] = None,
) -> Dict[str, EvaluationReport]:
    """Run every algorithm on ``instance`` and evaluate all Section-6 metrics.

    One :class:`SolveContext` (created here unless supplied) is shared by
    all context-aware runners, so redundant LP relaxation solves are
    eliminated across the line-up.  Legacy runners — plain callables without
    the ``accepts_context`` marker — are still invoked as
    ``runner(instance, rng=...)``.

    Each algorithm draws from its own generator seeded by
    ``derive_seed(seed, name)``.  (Compatibility note: earlier versions
    threaded one shared generator sequentially through the line-up, which
    made stochastic results depend on dictionary insertion order; the
    per-algorithm derivation is order-independent — required for
    serial ≡ parallel sweep equivalence — so randomized algorithms return
    different, equally valid draws than they did under the old scheme.)

    This is the single dispatch loop for the whole experiment layer:
    :func:`run_job` (and therefore every executor) routes through it, so
    serial and parallel sweeps cannot drift apart.
    """
    if isinstance(seed, (int, np.integer)):
        base_seed = int(seed)
    else:
        base_seed = int(ensure_rng(seed).integers(0, 2**31 - 1))
    if context is None:
        context = SolveContext(instance)
    reports: Dict[str, EvaluationReport] = {}
    for name, runner in algorithms.items():
        generator = ensure_rng(derive_seed(base_seed, name))
        if getattr(runner, "accepts_context", False):
            result = runner(instance, rng=generator, context=context)
        else:
            result = runner(instance, rng=generator)
        reports[name] = evaluate_result(instance, result)
    return reports


def run_job(
    instance_factory: InstanceFactory,
    job: SweepJob,
    artifact_store: Optional[ArtifactStore] = None,
) -> JobResult:
    """Build the job's instance, rehydrate its runners, dispatch the line-up.

    One :class:`SolveContext` is shared by all of the job's context-aware
    runners.  ``artifact_store`` may be either an in-memory mapping of
    instance fingerprints to :class:`ContextArtifacts` — the context is
    rehydrated from a matching entry and the store refreshed with this
    job's artifacts afterwards — or a persistent keyed store (anything
    exposing ``load_lp``/``save_lp``, i.e.
    :class:`repro.store.ArtifactStore`), which is *attached* to the context
    instead: LP solutions are then loaded lazily per parameter key and
    written through as they are solved, and reuses count into the
    ``lp_store_hits`` provenance counter.  Dispatch happens through
    :func:`run_algorithms`, so each algorithm draws from its own
    ``derive_seed(rep_seed, name)`` generator and results do not depend on
    line-up order or scheduling.
    """
    started = time.perf_counter()
    instance = instance_factory(job.value, job.rep_seed)
    context = SolveContext(instance)
    keyed_store = artifact_store is not None and hasattr(artifact_store, "load_lp")
    if keyed_store:
        context.attach_store(artifact_store)
    elif artifact_store is not None:
        artifacts = artifact_store.get(context.fingerprint)
        if artifacts is not None:
            context.adopt_artifacts(artifacts)

    runners = {
        payload.display_name: payload.rehydrate(columns=job.columns)
        for payload in job.algorithms
    }
    reports = run_algorithms(instance, runners, seed=job.rep_seed, context=context)

    if artifact_store is not None and not keyed_store and (
        context.lp_solves > 0 or context.fingerprint not in artifact_store
    ):
        # Write back only when this job computed something new — pure-hit
        # jobs leave the stored entry untouched, so executors can tell fresh
        # artifacts from already-known ones by identity.
        artifact_store[context.fingerprint] = context.export_artifacts()

    elapsed = time.perf_counter() - started
    provenance: Dict[str, Any] = {
        "job_index": job.index,
        "value": job.value,
        "rep": job.rep,
        "pid": os.getpid(),
        "seconds": elapsed,
        # Uniform wall-time provenance on every execution path (serial and
        # parallel both route through here): the cost model's training
        # signal.  ``job_seconds`` is the full job (instance build + line-up
        # + evaluation); ``lp_seconds`` arrives via context.stats() below.
        "job_seconds": elapsed,
        "num_users": instance.num_users,
        "num_items": instance.num_items,
        "num_slots": instance.num_slots,
    }
    provenance.update(context.stats())
    return JobResult(job_index=job.index, reports=reports, provenance=provenance)


def job_timing_signature(job: SweepJob) -> str:
    """Stable signature of a job's *work shape*: the line-up, not the instance.

    Two jobs share a signature exactly when they run the same algorithms with
    the same overrides and column bindings — the grouping key under which
    observed wall times accumulate in the store's timings table and under
    which the cost model (:mod:`repro.experiments.scheduler`) calibrates.
    Instance size (``n``/``m``/``k``) is deliberately *not* part of the
    signature: it is the regressor, recorded per row.
    """
    payloads = tuple(
        (
            payload.registry_name or payload.display_name,
            tuple(sorted((str(key), repr(val)) for key, val in payload.overrides.items())),
            tuple(sorted(payload.bind.items())),
        )
        for payload in job.algorithms
    )
    return hashlib.sha256(repr(payloads).encode("utf-8")).hexdigest()[:32]


def record_job_timing(store: Any, job: SweepJob, result: JobResult) -> None:
    """Persist one freshly executed job's wall time as cost-model training data.

    A no-op for stores without a timings surface and for resumed results
    (their ``job_seconds`` describes a past run already recorded).  Failures
    are swallowed: timing collection must never break a sweep.
    """
    if not hasattr(store, "record_timing"):
        return
    prov = result.provenance
    if prov.get("resumed") or "job_seconds" not in prov:
        return
    try:
        store.record_timing(
            job_timing_signature(job),
            int(prov.get("num_users", 0)),
            int(prov.get("num_items", 0)),
            int(prov.get("num_slots", 0)),
            float(prov["job_seconds"]),
            float(prov.get("lp_seconds", 0.0)),
        )
    except Exception:
        pass


#: Per-worker artifact seed, installed once by the pool initializer so a
#: store with many entries is pickled per *worker*, not per chunk.
_WORKER_SEED_ARTIFACTS: Dict[str, ContextArtifacts] = {}


def _seed_worker_artifacts(seed_artifacts: Optional[Dict[str, ContextArtifacts]]) -> None:
    global _WORKER_SEED_ARTIFACTS
    _WORKER_SEED_ARTIFACTS = dict(seed_artifacts or {})


def _run_job_group(
    instance_factory: InstanceFactory,
    jobs: Tuple[SweepJob, ...],
    collect_artifacts: bool,
    seed_artifacts: Optional[Dict[str, ContextArtifacts]] = None,
) -> Tuple[List[JobResult], Dict[str, ContextArtifacts]]:
    """Worker entry point: run one chunk of jobs with a chunk-local store.

    Module-level so it imports cleanly under both ``fork`` and ``spawn``
    start methods; importing this module (and, transitively, the registry on
    first dispatch) rehydrates all algorithm registrations in the worker.
    The store starts from the worker-level seed (installed once per worker
    by the pool initializer) unless ``seed_artifacts`` ships a chunk-level
    seed explicitly — the path persistent (reused) pools take, since their
    initializer ran before the current run's artifacts existed.  Only
    artifacts this chunk computed (or refreshed) are shipped back — seeded
    entries the parent already holds would be pure return traffic.
    """
    seeded = _WORKER_SEED_ARTIFACTS if seed_artifacts is None else seed_artifacts
    store: Dict[str, ContextArtifacts] = dict(seeded)
    results = [run_job(instance_factory, job, store) for job in jobs]
    if not collect_artifacts:
        return results, {}
    fresh = {
        fingerprint: artifacts
        for fingerprint, artifacts in store.items()
        if seeded.get(fingerprint) is not artifacts
    }
    return results, fresh


def _run_job_group_store(
    instance_factory: InstanceFactory,
    jobs: Tuple[SweepJob, ...],
    store: Any,
    signature: str,
    resume: bool,
) -> Tuple[List[JobResult], int]:
    """Worker entry point when a persistent store backs the run.

    Each finished job is checkpointed *by the worker, immediately* — the
    store's WAL-mode SQLite index tolerates concurrent writers — so a sweep
    killed mid-chunk still keeps every job that completed.  Jobs another
    process checkpointed in the meantime are skipped (``resume``); returns
    the chunk's results plus how many of them were resumed.
    """
    results: List[JobResult] = []
    resumed = 0
    for job in jobs:
        key = job_checkpoint_key(job)
        if resume:
            cached = store.load_job(signature, key)
            if cached is not None:
                results.append(_as_resumed(cached, job))
                resumed += 1
                continue
        result = run_job(instance_factory, job, store)
        store.save_job(signature, key, result)
        record_job_timing(store, job, result)
        results.append(result)
    return results, resumed


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
def resolve_worker_count(workers: int, *, available: Optional[int] = None) -> int:
    """Validate a requested pool size and clamp it to the host's CPU count.

    A pool wider than ``os.cpu_count()`` cannot add throughput for the
    CPU-bound LP/MILP jobs this layer runs — it only adds process start-up
    cost and scheduler churn — so oversubscription is treated as a caller
    mistake: the count is clamped and a :class:`RuntimeWarning` reports both
    numbers.  ``available`` overrides the detected CPU count (for tests);
    when the count cannot be detected (``os.cpu_count()`` returning ``None``)
    the request is trusted as-is.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    available = os.cpu_count() if available is None else available
    if available is not None and workers > int(available):
        warnings.warn(
            f"requested {workers} workers but only {available} CPU(s) are "
            f"available; clamping to {available} to avoid oversubscription",
            RuntimeWarning,
            stacklevel=3,
        )
        return int(available)
    return workers


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a :class:`SweepPlan` and return its job results.

    ``iter_run`` is the streaming primitive — results arrive as jobs finish,
    in completion order; ``run`` is its deterministic-reorder wrapper (job
    index order, identical tables regardless of scheduling).
    """

    def run(self, plan: SweepPlan) -> List[JobResult]:
        ...

    def iter_run(self, plan: SweepPlan) -> Iterator[JobResult]:
        ...


class SerialExecutor:
    """Run every job in plan order, in-process — the default executor.

    Behaviour matches the historical ``sweep()`` loop plus two optional
    reuse layers:

    * ``artifact_store`` — an in-memory fingerprint →
      :class:`~repro.core.pipeline.ContextArtifacts` mapping letting
      repetitions that rebuild an identical instance reuse its LP solutions
      within this process (a pure cache: the LP solver is deterministic, so
      results are unchanged).
    * ``store`` — a persistent :class:`repro.store.ArtifactStore`.  LP
      solutions are then loaded/written through disk (reuse survives
      invocations; ``lp_store_hits`` in the job provenance counts it), and
      every finished job is checkpointed under the plan's
      :func:`plan_signature` as soon as it completes, so an interrupted run
      resumes from its checkpoints.  ``resume=False`` re-executes jobs even
      when a checkpoint exists (still refreshing the checkpoints and still
      reusing stored LP solutions) — useful for measuring warm-store solve
      counts.

    ``jobs_resumed`` / ``jobs_executed`` report, after each run, how many
    results came from checkpoints versus fresh execution.
    """

    def __init__(
        self,
        artifact_store: Optional[ArtifactStore] = None,
        *,
        store: Optional[Any] = None,
        resume: bool = True,
    ) -> None:
        if store is not None and artifact_store is not None:
            raise ValueError(
                "pass either an in-memory artifact_store or a persistent "
                "store, not both — the persistent store already covers LP reuse"
            )
        self.artifact_store: ArtifactStore = (
            artifact_store if artifact_store is not None else {}
        )
        self.store = store
        self.resume = resume
        self.jobs_resumed = 0
        self.jobs_executed = 0

    def iter_run(self, plan: SweepPlan) -> Iterator[JobResult]:
        """Yield each job's result as it finishes, checkpointing along the way."""
        self.jobs_resumed = 0
        self.jobs_executed = 0
        signature = plan_signature(plan) if self.store is not None else None
        backing = self.store if self.store is not None else self.artifact_store
        for job in plan.jobs:
            if signature is not None and self.resume:
                cached = self.store.load_job(signature, job_checkpoint_key(job))
                if cached is not None:
                    self.jobs_resumed += 1
                    yield _as_resumed(cached, job)
                    continue
            result = run_job(plan.instance_factory, job, backing)
            self.jobs_executed += 1
            if signature is not None:
                self.store.save_job(signature, job_checkpoint_key(job), result)
                record_job_timing(self.store, job, result)
            yield result

    def run(self, plan: SweepPlan) -> List[JobResult]:
        return sorted(self.iter_run(plan), key=lambda result: result.job_index)


class ParallelExecutor:
    """Fan a plan out over a process pool; results are order-independent.

    Jobs are chunked by sweep value (all repetitions of one sweep point form
    one chunk) so each instance's repetitions share a worker-local artifact
    store — the per-instance LP reuse of :class:`SolveContext` survives the
    fan-out.  Completed chunks are reassembled by job index, so the returned
    list (and therefore every aggregated table) is identical to a serial
    run's regardless of worker scheduling.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` still goes through the pool (useful for testing
        the pickling path).  Requests exceeding ``os.cpu_count()`` are
        clamped with a :class:`RuntimeWarning`
        (:func:`resolve_worker_count`) — oversubscribing CPU-bound LP jobs
        only adds start-up cost and scheduler churn.
    reuse_pool:
        When True the executor keeps one persistent process pool across
        ``run()`` / ``iter_run()`` calls instead of spawning a fresh pool
        per run, so repeated plans pay worker start-up (and registry import)
        once — the mode the serving layer and latency benchmarks rely on.
        Call :meth:`close` (or use the executor as a context manager) to
        shut the pool down.  With ``artifact_store`` seeding, a persistent
        pool ships the seed per chunk instead of per worker.
    collect_artifacts:
        When True, worker artifact stores are shipped back and merged into
        :attr:`artifact_store`, so a later plan run through this executor
        (or a :class:`SerialExecutor` sharing the store) reuses them across
        the process boundary.  Off by default: artifacts embed the dense
        weighted tensors, and sweeps whose factories derive a fresh
        instance per repetition can never hit them — opt in when instances
        repeat across jobs or runs.  (Worker-local reuse *within* a chunk
        is always on and needs no collection.)
    mp_context:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.
    store:
        Optional persistent :class:`repro.store.ArtifactStore`.  The store
        object itself is shipped to the workers (it pickles by path and
        reconnects; WAL-mode SQLite tolerates the concurrent writers): each
        worker loads LP solutions from disk before solving and checkpoints
        every finished job immediately, so killing the sweep mid-flight
        loses at most the jobs still in progress — a re-run with the same
        store yields the checkpointed results and completes only the
        unfinished jobs.  ``resume=False`` re-executes everything while
        still reusing stored LP solutions.  Workers that cold-start
        *concurrently* on one instance may each solve its LP once before
        either has written it — a benign race (the solver is deterministic
        and blobs are content-addressed, so the writes collide on identical
        content): a cold parallel run performs at most ``workers`` solves
        per instance instead of one, and every later job reads from disk.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        collect_artifacts: bool = False,
        artifact_store: Optional[ArtifactStore] = None,
        mp_context: Optional[str] = None,
        store: Optional[Any] = None,
        resume: bool = True,
        reuse_pool: bool = False,
    ) -> None:
        if store is not None and (collect_artifacts or artifact_store is not None):
            raise ValueError(
                "a persistent store supersedes the in-memory artifact options; "
                "pass either store= or artifact_store=/collect_artifacts=, not both"
            )
        self.workers = resolve_worker_count(workers)
        self.collect_artifacts = collect_artifacts
        self.artifact_store: ArtifactStore = (
            artifact_store if artifact_store is not None else {}
        )
        self.mp_context = mp_context
        self.store = store
        self.resume = resume
        self.reuse_pool = reuse_pool
        self.jobs_resumed = 0
        self.jobs_executed = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _chunks(jobs: Iterable[SweepJob]) -> List[Tuple[SweepJob, ...]]:
        grouped: Dict[int, List[SweepJob]] = {}
        for job in jobs:
            grouped.setdefault(job.value_index, []).append(job)
        return [tuple(grouped[key]) for key in sorted(grouped)]

    def _mp_ctx(self):
        if self.mp_context is None:
            return None
        import multiprocessing

        return multiprocessing.get_context(self.mp_context)

    def _persistent_pool(self) -> ProcessPoolExecutor:
        """The long-lived pool (created on first use) when ``reuse_pool`` is set."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_ctx()
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (no-op without ``reuse_pool``)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _finish_run(self, pool: ProcessPoolExecutor, pending: Iterable[Any]) -> None:
        """End-of-run pool handling: per-run pools die, persistent pools drain."""
        if pool is self._pool:
            for future in pending:
                future.cancel()
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    def iter_run(self, plan: SweepPlan) -> Iterator[JobResult]:
        """Yield job results in completion order (chunk by chunk).

        Closing the iterator early cancels chunks that have not started;
        chunks already running finish (and, with a persistent store,
        checkpoint their jobs) before the pool shuts down.
        """
        self.jobs_resumed = 0
        self.jobs_executed = 0
        if self.store is not None:
            yield from self._iter_run_store(plan)
        else:
            yield from self._iter_run_seeded(plan)

    def _iter_run_store(self, plan: SweepPlan) -> Iterator[JobResult]:
        signature = plan_signature(plan)
        remaining: List[SweepJob] = []
        for job in plan.jobs:
            cached = (
                self.store.load_job(signature, job_checkpoint_key(job))
                if self.resume
                else None
            )
            if cached is not None:
                self.jobs_resumed += 1
                yield _as_resumed(cached, job)
            else:
                remaining.append(job)
        chunks = self._chunks(remaining)
        if not chunks:
            return
        if self.reuse_pool:
            pool = self._persistent_pool()
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)), mp_context=self._mp_ctx()
            )
        pending: set = set()
        try:
            pending = {
                pool.submit(
                    _run_job_group_store,
                    plan.instance_factory,
                    chunk,
                    self.store,
                    signature,
                    self.resume,
                )
                for chunk in chunks
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk_results, resumed = future.result()
                    self.jobs_resumed += resumed
                    self.jobs_executed += len(chunk_results) - resumed
                    yield from chunk_results
        finally:
            self._finish_run(pool, pending)

    def _iter_run_seeded(self, plan: SweepPlan) -> Iterator[JobResult]:
        chunks = self._chunks(plan.jobs)
        if not chunks:
            return
        seed_artifacts = dict(self.artifact_store) if self.artifact_store else None
        if self.reuse_pool:
            # A persistent pool's initializer ran before this run's artifacts
            # existed, so the seed travels with each chunk instead.
            pool = self._persistent_pool()
            chunk_seed = seed_artifacts
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)),
                mp_context=self._mp_ctx(),
                initializer=_seed_worker_artifacts,
                initargs=(seed_artifacts,),
            )
            chunk_seed = None
        pending: set = set()
        try:
            pending = {
                pool.submit(
                    _run_job_group,
                    plan.instance_factory,
                    chunk,
                    self.collect_artifacts,
                    chunk_seed,
                )
                for chunk in chunks
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk_results, artifacts = future.result()
                    self.jobs_executed += len(chunk_results)
                    if self.collect_artifacts:
                        self.artifact_store.update(artifacts)
                    yield from chunk_results
        finally:
            self._finish_run(pool, pending)

    def run(self, plan: SweepPlan) -> List[JobResult]:
        return sorted(self.iter_run(plan), key=lambda result: result.job_index)


__all__ = [
    "SweepJob",
    "SweepPlan",
    "JobResult",
    "InstanceFactory",
    "ArtifactStore",
    "compile_sweep",
    "compile_grid",
    "plan_signature",
    "job_checkpoint_key",
    "job_timing_signature",
    "record_job_timing",
    "run_algorithms",
    "run_job",
    "resolve_worker_count",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
]
