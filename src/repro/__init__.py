"""repro — reproduction of "Optimizing Item and Subgroup Configurations for Social-Aware VR Shopping".

The package implements the SVGIC / SVGIC-ST optimization problems, the AVG
and AVG-D approximation algorithms, the exact integer program, all baseline
recommenders, synthetic dataset substrates mirroring the paper's evaluation
datasets, subgroup/regret metrics, and an experiment harness regenerating
every table and figure of the paper's evaluation section.

Quickstart
----------
>>> from repro import datasets, run_avg_d, run_per
>>> instance = datasets.make_instance("timik", num_users=20, num_items=60, num_slots=4, seed=7)
>>> ours = run_avg_d(instance)
>>> baseline = run_per(instance)
>>> ours.objective >= baseline.objective
True
"""

from repro.baselines import run_fmg, run_grf, run_per, run_sdp
from repro.core import (
    AlgorithmResult,
    SAVGConfiguration,
    SVGICInstance,
    SVGICSTInstance,
    evaluate,
    evaluate_st,
    run_avg,
    run_avg_d,
    scaled_total_utility,
    solve_exact,
    solve_lp_relaxation,
    total_utility,
)
from repro.data import datasets

__version__ = "1.0.0"

__all__ = [
    "SVGICInstance",
    "SVGICSTInstance",
    "SAVGConfiguration",
    "AlgorithmResult",
    "evaluate",
    "evaluate_st",
    "total_utility",
    "scaled_total_utility",
    "solve_lp_relaxation",
    "solve_exact",
    "run_avg",
    "run_avg_d",
    "run_per",
    "run_fmg",
    "run_sdp",
    "run_grf",
    "datasets",
    "__version__",
]
