"""Content-addressed blob files: the payload half of the artifact store.

Blobs are immutable byte strings named by their own SHA-256 digest and laid
out under ``<root>/<digest[:2]>/<digest>.npz`` (two-level fan-out keeps
directories small at scale).  Content addressing gives deduplication for
free — writing the same payload twice is a no-op — and makes corruption
detectable: a read re-hashes the bytes and refuses to return data whose
digest does not match its name (a truncated or bit-flipped file raises
:class:`BlobCorruptionError`, which the index layer turns into an eviction).

Writes are atomic: the payload lands in a process-unique temporary file that
is ``os.replace``-d into place, so concurrent writers (parallel sweep
workers sharing one store directory) can never expose a half-written blob.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path


class BlobCorruptionError(RuntimeError):
    """A blob's bytes do not hash to the digest it is stored under."""


class BlobStore:
    """Flat content-addressed file store under one root directory."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """Filesystem location of the blob named ``digest``."""
        return self.root / digest[:2] / f"{digest}.npz"

    def put(self, data: bytes) -> str:
        """Store ``data``; returns its SHA-256 digest (the blob name).

        Idempotent: an existing blob with the same content is left untouched.
        """
        digest = hashlib.sha256(data).hexdigest()
        path = self.path_for(digest)
        if path.exists():
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.tmp-{os.getpid()}"
        tmp.write_bytes(data)
        os.replace(tmp, path)
        return digest

    def get(self, digest: str) -> bytes:
        """The verified bytes of blob ``digest``.

        Raises ``FileNotFoundError`` for a missing blob and
        :class:`BlobCorruptionError` when the stored bytes no longer hash to
        ``digest`` (truncation, partial write, bit rot).
        """
        data = self.path_for(digest).read_bytes()
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            raise BlobCorruptionError(
                f"blob {digest[:12]}… hashes to {actual[:12]}… "
                f"({len(data)} bytes on disk)"
            )
        return data

    def delete(self, digest: str) -> None:
        """Remove blob ``digest`` if present (missing blobs are ignored)."""
        try:
            self.path_for(digest).unlink()
        except FileNotFoundError:
            pass

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()


__all__ = ["BlobStore", "BlobCorruptionError"]
