"""SQLite index over the blob store: who owns which payload, at which schema.

One ``entries`` table maps ``(namespace, fingerprint, param_key)`` to a blob
digest plus the codec schema version it was written with.  The namespaces in
use are ``"lp"`` (LP relaxation solutions; ``fingerprint`` is the instance
fingerprint and ``param_key`` the canonical LP parameter key), ``"tensors"``
(context tensor snapshots) and ``"job"`` (executor job checkpoints;
``fingerprint`` is the plan signature and ``param_key`` the job index).

The connection is configured for concurrent multi-process access — workers
of a :class:`~repro.experiments.executor.ParallelExecutor` all write to the
same index: ``journal_mode=WAL`` (readers never block the writer),
``synchronous=NORMAL`` and a 30-second ``busy_timeout``.  The connection is
opened lazily and dropped on pickling, so an index object can ride into a
worker process and reconnect there.

The index is also safe to share across *threads* of one process (the
serving layer's batcher thread and callers hit one store concurrently): the
connection is opened with ``check_same_thread=False`` and every operation
holds a process-local re-entrant lock, serializing access to the shared
connection.  The lock, like the connection, does not survive pickling.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS entries (
    namespace      TEXT NOT NULL,
    fingerprint    TEXT NOT NULL,
    param_key      TEXT NOT NULL,
    blob_sha       TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    created_at     TEXT NOT NULL,
    PRIMARY KEY (namespace, fingerprint, param_key)
)
"""

# Observed job wall times, the sweep scheduler's cost-model training data.
# One row per (line-up signature, instance size): repeated observations fold
# into a running mean via the WAL-safe upsert in record_timing(), so the
# table stays bounded no matter how many sweeps run against the store.
_TIMINGS_SQL = """
CREATE TABLE IF NOT EXISTS timings (
    signature   TEXT NOT NULL,
    n           INTEGER NOT NULL,
    m           INTEGER NOT NULL,
    k           INTEGER NOT NULL,
    job_seconds REAL NOT NULL,
    lp_seconds  REAL NOT NULL,
    samples     INTEGER NOT NULL,
    updated_at  TEXT NOT NULL,
    PRIMARY KEY (signature, n, m, k)
)
"""


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat()


class SQLiteIndex:
    """Lazy-connecting, picklable, thread-safe index over store entries."""

    def __init__(self, path: os.PathLike, *, busy_timeout_ms: int = 30_000) -> None:
        self.path = Path(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self._conn: Optional[sqlite3.Connection] = None
        self._lock = threading.RLock()

    # -- connection lifecycle ------------------------------------------- #
    @property
    def connection(self) -> sqlite3.Connection:
        with self._lock:
            if self._conn is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(
                    str(self.path),
                    timeout=self.busy_timeout_ms / 1000.0,
                    # Shared across threads; every use holds self._lock.
                    check_same_thread=False,
                )
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
                conn.execute("PRAGMA foreign_keys=ON")
                with conn:
                    conn.execute(_SCHEMA_SQL)
                    conn.execute(_TIMINGS_SQL)
                self._conn = conn
            return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __getstate__(self) -> Dict[str, Any]:
        # Connections and locks cannot cross process boundaries; reconnect lazily.
        return {"path": self.path, "busy_timeout_ms": self.busy_timeout_ms}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.busy_timeout_ms = state["busy_timeout_ms"]
        self._conn = None
        self._lock = threading.RLock()

    # -- entry operations ------------------------------------------------ #
    def put(
        self,
        namespace: str,
        fingerprint: str,
        param_key: str,
        blob_sha: str,
        schema_version: int,
    ) -> None:
        """Insert or replace one entry (upsert on the primary key)."""
        with self._lock, self.connection as conn:
            conn.execute(
                "INSERT INTO entries (namespace, fingerprint, param_key, blob_sha,"
                " schema_version, created_at) VALUES (?, ?, ?, ?, ?, ?)"
                " ON CONFLICT (namespace, fingerprint, param_key) DO UPDATE SET"
                " blob_sha=excluded.blob_sha, schema_version=excluded.schema_version,"
                " created_at=excluded.created_at",
                (namespace, fingerprint, param_key, blob_sha, int(schema_version), _utc_now()),
            )

    def get(
        self, namespace: str, fingerprint: str, param_key: str
    ) -> Optional[Tuple[str, int]]:
        """``(blob_sha, schema_version)`` of one entry, or None."""
        with self._lock:
            row = self.connection.execute(
                "SELECT blob_sha, schema_version FROM entries"
                " WHERE namespace = ? AND fingerprint = ? AND param_key = ?",
                (namespace, fingerprint, param_key),
            ).fetchone()
        if row is None:
            return None
        return str(row[0]), int(row[1])

    def delete(self, namespace: str, fingerprint: str, param_key: str) -> None:
        with self._lock, self.connection as conn:
            conn.execute(
                "DELETE FROM entries WHERE namespace = ? AND fingerprint = ?"
                " AND param_key = ?",
                (namespace, fingerprint, param_key),
            )

    def params(self, namespace: str, fingerprint: str) -> List[Tuple[str, str, int]]:
        """All ``(param_key, blob_sha, schema_version)`` rows for one fingerprint."""
        with self._lock:
            rows = self.connection.execute(
                "SELECT param_key, blob_sha, schema_version FROM entries"
                " WHERE namespace = ? AND fingerprint = ? ORDER BY param_key",
                (namespace, fingerprint),
            ).fetchall()
        return [(str(pk), str(sha), int(sv)) for pk, sha, sv in rows]

    def fingerprints(self, *namespaces: str) -> List[str]:
        """Distinct fingerprints present in any of ``namespaces`` (sorted)."""
        with self._lock:
            if not namespaces:
                rows = self.connection.execute(
                    "SELECT DISTINCT fingerprint FROM entries ORDER BY fingerprint"
                ).fetchall()
            else:
                marks = ",".join("?" for _ in namespaces)
                rows = self.connection.execute(
                    f"SELECT DISTINCT fingerprint FROM entries WHERE namespace IN ({marks})"
                    " ORDER BY fingerprint",
                    namespaces,
                ).fetchall()
        return [str(row[0]) for row in rows]

    def count(self, namespace: Optional[str] = None) -> int:
        """Number of entries (in one namespace, or overall)."""
        with self._lock:
            if namespace is None:
                row = self.connection.execute("SELECT COUNT(*) FROM entries").fetchone()
            else:
                row = self.connection.execute(
                    "SELECT COUNT(*) FROM entries WHERE namespace = ?", (namespace,)
                ).fetchone()
        return int(row[0])

    def clear(self) -> None:
        with self._lock, self.connection as conn:
            conn.execute("DELETE FROM entries")

    # -- observed job timings (cost-model training data) ------------------ #
    def record_timing(
        self,
        signature: str,
        n: int,
        m: int,
        k: int,
        job_seconds: float,
        lp_seconds: float = 0.0,
    ) -> None:
        """Fold one observed job wall time into the timings table.

        The upsert keeps a running mean per ``(signature, n, m, k)`` cell —
        WAL-safe, so :class:`~repro.experiments.scheduler.WorkStealingExecutor`
        workers of several processes can all report into one index.  Negative
        durations (clock skew) are clamped to zero rather than poisoning the
        mean.
        """
        job_seconds = max(0.0, float(job_seconds))
        lp_seconds = max(0.0, float(lp_seconds))
        with self._lock, self.connection as conn:
            conn.execute(
                "INSERT INTO timings (signature, n, m, k, job_seconds, lp_seconds,"
                " samples, updated_at) VALUES (?, ?, ?, ?, ?, ?, 1, ?)"
                " ON CONFLICT (signature, n, m, k) DO UPDATE SET"
                " job_seconds = (timings.job_seconds * timings.samples + excluded.job_seconds)"
                "   / (timings.samples + 1),"
                " lp_seconds = (timings.lp_seconds * timings.samples + excluded.lp_seconds)"
                "   / (timings.samples + 1),"
                " samples = timings.samples + 1,"
                " updated_at = excluded.updated_at",
                (signature, int(n), int(m), int(k), job_seconds, lp_seconds, _utc_now()),
            )

    def timings(
        self, signature: Optional[str] = None
    ) -> List[Tuple[str, int, int, int, float, float, int]]:
        """``(signature, n, m, k, job_seconds, lp_seconds, samples)`` rows.

        With ``signature`` the result is restricted to one line-up; rows are
        ordered by instance size so calibration code can consume them
        directly.
        """
        query = (
            "SELECT signature, n, m, k, job_seconds, lp_seconds, samples"
            " FROM timings"
        )
        params: Tuple[Any, ...] = ()
        if signature is not None:
            query += " WHERE signature = ?"
            params = (signature,)
        query += " ORDER BY signature, n, m, k"
        with self._lock:
            rows = self.connection.execute(query, params).fetchall()
        return [
            (str(sig), int(n), int(m), int(k), float(js), float(ls), int(s))
            for sig, n, m, k, js, ls, s in rows
        ]

    def timing_signatures(self) -> List[str]:
        """Distinct line-up signatures with at least one recorded timing."""
        with self._lock:
            rows = self.connection.execute(
                "SELECT DISTINCT signature FROM timings ORDER BY signature"
            ).fetchall()
        return [str(row[0]) for row in rows]

    def clear_timings(self) -> None:
        with self._lock, self.connection as conn:
            conn.execute("DELETE FROM timings")


__all__ = ["SQLiteIndex"]
