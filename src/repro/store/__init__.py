"""Persistent, content-addressed artifact/result store for solve state.

The store is the disk-backed sibling of the in-memory artifact maps used by
the experiment executors: a SQLite index (WAL journal, busy-timeout) over
content-addressed ``.npz`` blob payloads.  Three kinds of entries share the
same index/blob substrate:

* **LP relaxation solutions**, keyed by
  :func:`repro.core.pipeline.instance_fingerprint` plus the *full* LP
  parameter tuple — attached to a
  :class:`~repro.core.pipeline.SolveContext`, the store turns every LP
  relaxation into a once-per-machine cost (the context's ``lp_store_hits``
  counter makes the reuse assertable across process *and invocation*
  boundaries).
* **Context tensors** (the weighted preference/pair tensors and candidate
  item sets of a :class:`~repro.core.pipeline.ContextArtifacts` snapshot),
  keyed by instance fingerprint.
* **Job results** — finished :class:`~repro.experiments.executor.JobResult`
  records keyed by the plan's scope signature
  (:func:`~repro.experiments.executor.plan_signature`) and a per-job content
  key (:func:`~repro.experiments.executor.job_checkpoint_key`), written
  incrementally by the streaming executors so an interrupted sweep resumes
  from its checkpoints instead of restarting.

Robustness is eviction-based: a stale schema version, a missing blob, a
truncated or corrupted payload — every failure mode deletes the offending
index entry (and blob, best effort) and reports a miss, so consumers simply
re-solve.  The store never raises on bad persisted state.
"""

from repro.store.blobs import BlobCorruptionError, BlobStore
from repro.store.codecs import (
    SCHEMA_VERSION,
    decode_fractional,
    decode_job_result,
    encode_fractional,
    encode_job_result,
    lp_param_key,
    pack_payload,
    unpack_payload,
)
from repro.store.index import SQLiteIndex
from repro.store.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "BlobStore",
    "BlobCorruptionError",
    "SQLiteIndex",
    "SCHEMA_VERSION",
    "pack_payload",
    "unpack_payload",
    "lp_param_key",
    "encode_fractional",
    "decode_fractional",
    "encode_job_result",
    "decode_job_result",
]
