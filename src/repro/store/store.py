"""The :class:`ArtifactStore`: one disk directory holding solves and results.

Layout under ``root``::

    root/
      index.sqlite        # SQLite index (WAL), see repro.store.index
      blobs/ab/<sha>.npz  # content-addressed payloads, see repro.store.blobs

The store exposes three keyed surfaces over that substrate:

* ``load_lp`` / ``save_lp`` — LP relaxation solutions keyed by instance
  fingerprint **plus the full LP parameter tuple**.  This is the surface a
  :class:`~repro.core.pipeline.SolveContext` consults when a store is
  attached: a cache miss falls through to disk before it falls through to
  the solver, and fresh solves are written through immediately.
* ``load_job`` / ``save_job`` — executor checkpoints keyed by plan signature
  and job index; the streaming executors write one entry per finished job so
  interrupted sweeps resume instead of restarting.
* a mapping-style facade (``get`` / ``__setitem__`` / ``__contains__``) over
  whole :class:`~repro.core.pipeline.ContextArtifacts` snapshots, so the
  store can stand in wherever the executors accept an in-memory
  ``fingerprint -> artifacts`` dict.

Every load verifies schema version and blob integrity; anything stale,
missing, truncated or corrupted is evicted and reported as a miss — callers
re-solve, they never crash.  Instances are picklable (the SQLite connection
is dropped and lazily reopened), so one store object can be shipped to
:class:`~repro.experiments.executor.ParallelExecutor` workers, which then
share the directory through WAL-mode SQLite.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.lp import FractionalSolution
from repro.core.pipeline import ContextArtifacts
from repro.experiments.executor import JobResult
from repro.store.blobs import BlobStore
from repro.store.codecs import (
    SCHEMA_VERSION,
    decode_fractional,
    decode_job_result,
    decode_tensors,
    encode_fractional,
    encode_job_result,
    encode_tensors,
    lp_param_key,
    pack_payload,
    parse_lp_param_key,
    unpack_payload,
)
from repro.store.index import SQLiteIndex

#: Index namespaces (see repro.store.index for the key layout per namespace).
NS_LP = "lp"
NS_TENSORS = "tensors"
NS_JOB = "job"


class ArtifactStore:
    """Disk-backed, content-addressed store for LP solves and job results.

    Attributes
    ----------
    hits / misses / evictions / writes:
        Per-instance counters (this process only — not persisted).  A miss
        caused by a stale or corrupted entry also counts one eviction.
    """

    def __init__(self, root: os.PathLike, *, busy_timeout_ms: int = 30_000) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index = SQLiteIndex(self.root / "index.sqlite", busy_timeout_ms=busy_timeout_ms)
        self._blobs = BlobStore(self.root / "blobs")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    # -- plumbing -------------------------------------------------------- #
    @property
    def index(self) -> SQLiteIndex:
        return self._index

    def close(self) -> None:
        self._index.close()

    def __getstate__(self) -> Dict[str, Any]:
        return {"root": self.root, "_index": self._index, "_blobs": self._blobs}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.root = state["root"]
        self._index = state["_index"]
        self._blobs = state["_blobs"]
        self.hits = self.misses = self.evictions = self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writes": self.writes,
        }

    def _evict(self, namespace: str, fingerprint: str, param_key: str, blob_sha: str) -> None:
        # Blobs are content-addressed and may be shared by several entries;
        # deleting a shared blob merely turns the other entries into misses
        # on their next read (they evict themselves and re-solve).
        self._index.delete(namespace, fingerprint, param_key)
        self._blobs.delete(blob_sha)
        self.evictions += 1

    def _load(self, namespace: str, fingerprint: str, param_key: str = "") -> Optional[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
        """Verified ``(meta, arrays)`` of one entry, or None (evicting bad state)."""
        row = self._index.get(namespace, fingerprint, param_key)
        if row is None:
            self.misses += 1
            return None
        blob_sha, schema_version = row
        if schema_version != SCHEMA_VERSION:
            self._evict(namespace, fingerprint, param_key, blob_sha)
            self.misses += 1
            return None
        try:
            payload = self._blobs.get(blob_sha)
            meta, arrays = unpack_payload(payload)
        except Exception:
            # Missing, truncated, corrupted or undecodable blob: never crash —
            # drop the entry and let the caller re-solve.
            self._evict(namespace, fingerprint, param_key, blob_sha)
            self.misses += 1
            return None
        self.hits += 1
        return meta, arrays

    def _save(self, namespace: str, fingerprint: str, param_key: str, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> None:
        blob_sha = self._blobs.put(pack_payload(meta, arrays))
        self._index.put(namespace, fingerprint, param_key, blob_sha, SCHEMA_VERSION)
        self.writes += 1

    # -- LP relaxation solutions ----------------------------------------- #
    def load_lp(self, fingerprint: str, key: Tuple[Any, ...]) -> Optional[FractionalSolution]:
        """The stored LP solution for ``(fingerprint, full parameter key)``, or None."""
        loaded = self._load(NS_LP, fingerprint, lp_param_key(key))
        if loaded is None:
            return None
        return decode_fractional(*loaded)

    def save_lp(self, fingerprint: str, key: Tuple[Any, ...], solution: FractionalSolution) -> None:
        self._save(NS_LP, fingerprint, lp_param_key(key), *encode_fractional(solution))

    # -- executor job checkpoints ----------------------------------------- #
    def load_job(self, signature: str, job_key: str) -> Optional[JobResult]:
        """The checkpointed result under plan scope ``signature`` and job key.

        ``job_key`` is the per-job content key produced by
        :func:`repro.experiments.executor.job_checkpoint_key` (the store
        treats it as opaque).
        """
        loaded = self._load(NS_JOB, signature, job_key)
        if loaded is None:
            return None
        return decode_job_result(*loaded)

    def save_job(self, signature: str, job_key: str, result: JobResult) -> None:
        self._save(NS_JOB, signature, job_key, *encode_job_result(result))

    def job_indices(self, signature: str) -> List[int]:
        """Indices of every readable checkpoint under plan scope ``signature``.

        Job keys are content hashes (position-independent), so the index is
        read from each checkpoint's metadata — the index recorded by the
        plan that *wrote* it.  A maintenance helper: unreadable or stale
        entries are skipped (not evicted) and counters are left untouched.
        """
        indices: List[int] = []
        for _, blob_sha, schema_version in self._index.params(NS_JOB, signature):
            if schema_version != SCHEMA_VERSION:
                continue
            try:
                meta, _ = unpack_payload(self._blobs.get(blob_sha))
                indices.append(int(meta["job_index"]))
            except Exception:
                continue
        return sorted(indices)

    # -- mapping facade over whole ContextArtifacts ----------------------- #
    def get(self, fingerprint: str, default: Any = None) -> Optional[ContextArtifacts]:
        """Assemble a :class:`ContextArtifacts` from every entry of ``fingerprint``.

        Combines the tensors payload (if any) with all LP solutions stored
        for the fingerprint; returns ``default`` when nothing is stored.
        """
        tensors = self._load(NS_TENSORS, fingerprint)
        lp_solutions: Dict[Tuple[Any, ...], FractionalSolution] = {}
        for param_key, _, _ in self._index.params(NS_LP, fingerprint):
            loaded = self._load(NS_LP, fingerprint, param_key)
            if loaded is not None:
                lp_solutions[parse_lp_param_key(param_key)] = decode_fractional(*loaded)
        if tensors is None and not lp_solutions:
            return default
        if tensors is not None:
            kwargs = decode_tensors(*tensors)
        else:
            kwargs = {"fingerprint": fingerprint}
        return ContextArtifacts(lp_solutions=lp_solutions, **kwargs)

    def __setitem__(self, fingerprint: str, artifacts: ContextArtifacts) -> None:
        self._save(NS_TENSORS, fingerprint, "", *encode_tensors(artifacts))
        for key, solution in artifacts.lp_solutions.items():
            self.save_lp(fingerprint, key, solution)

    def __getitem__(self, fingerprint: str) -> ContextArtifacts:
        artifacts = self.get(fingerprint)
        if artifacts is None:
            raise KeyError(fingerprint)
        return artifacts

    def __contains__(self, fingerprint: str) -> bool:
        return (
            self._index.get(NS_TENSORS, fingerprint, "") is not None
            or bool(self._index.params(NS_LP, fingerprint))
        )

    def __len__(self) -> int:
        return len(self._index.fingerprints(NS_TENSORS, NS_LP))

    def keys(self) -> List[str]:
        return self._index.fingerprints(NS_TENSORS, NS_LP)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def update(self, mapping: Mapping[str, ContextArtifacts]) -> None:
        for fingerprint, artifacts in mapping.items():
            self[fingerprint] = artifacts

    # -- observed job timings (cost-model training data) ------------------ #
    def record_timing(
        self,
        signature: str,
        n: int,
        m: int,
        k: int,
        job_seconds: float,
        lp_seconds: float = 0.0,
    ) -> None:
        """Fold one observed job wall time into the index's timings table.

        ``signature`` identifies the work shape (a line-up signature from
        :func:`repro.experiments.executor.job_timing_signature` or a shard
        signature); ``n``/``m``/``k`` the instance size it ran at.  The sweep
        scheduler's cost model (:mod:`repro.experiments.scheduler`) trains on
        these rows, so every store-backed run makes later schedules better.
        """
        self._index.record_timing(signature, n, m, k, job_seconds, lp_seconds)

    def load_timings(
        self, signature: Optional[str] = None
    ) -> List[Tuple[str, int, int, int, float, float, int]]:
        """``(signature, n, m, k, job_seconds, lp_seconds, samples)`` rows."""
        return self._index.timings(signature)

    def timing_signatures(self) -> List[str]:
        """Distinct work-shape signatures with recorded timings."""
        return self._index.timing_signatures()

    # -- maintenance ------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every index entry (blobs are left for the filesystem to reclaim)."""
        self._index.clear()


__all__ = ["ArtifactStore", "NS_LP", "NS_TENSORS", "NS_JOB"]
