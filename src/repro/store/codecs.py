"""Codecs between library objects and the store's ``.npz`` blob payloads.

Every blob is one compressed NumPy archive holding the payload's arrays plus
a ``__meta__`` entry — the JSON-encoded scalar part of the object, stored as
a ``uint8`` byte array so the whole payload stays a single self-contained
``.npz`` file.  Floats survive the JSON leg exactly (``json`` serializes via
``repr``, which round-trips IEEE doubles), and arrays travel natively, so a
decoded object is value-identical to the encoded one.

``SCHEMA_VERSION`` stamps every index entry; bumping it (because a codec
here changed shape) makes every previously written entry *stale* — the store
evicts stale entries on read and the caller re-solves, so old stores never
need migration and never crash a new library version.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Tuple

import numpy as np

from repro.core.lp import FractionalSolution
from repro.experiments.executor import JobResult
from repro.experiments.harness import _jsonify
from repro.metrics.evaluation import EvaluationReport

#: Version of the blob payload layout; bump on any codec shape change.
SCHEMA_VERSION = 1

ArrayDict = Dict[str, np.ndarray]


# --------------------------------------------------------------------------- #
# Payload packing
# --------------------------------------------------------------------------- #
def pack_payload(meta: Dict[str, Any], arrays: ArrayDict) -> bytes:
    """Serialize ``(meta, arrays)`` into one compressed ``.npz`` byte string."""
    encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        **{"__meta__": encoded, **{k: np.ascontiguousarray(v) for k, v in arrays.items()}},
    )
    return buffer.getvalue()


def unpack_payload(data: bytes) -> Tuple[Dict[str, Any], ArrayDict]:
    """Inverse of :func:`pack_payload`; raises on malformed payloads."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        arrays = {name: archive[name] for name in archive.files if name != "__meta__"}
    return meta, arrays


# --------------------------------------------------------------------------- #
# LP relaxation solutions
# --------------------------------------------------------------------------- #
def lp_param_key(key: Tuple[Any, ...]) -> str:
    """Canonical string form of a :meth:`SolveContext.fractional` cache key.

    The key tuple is ``(formulation, prune_items, max_candidate_items,
    enforce_size_constraint)`` — JSON over those primitives is stable and
    order-preserving, so equal parameters always map to equal index rows.
    """
    return json.dumps(list(key))


def parse_lp_param_key(param_key: str) -> Tuple[Any, ...]:
    """Inverse of :func:`lp_param_key`."""
    return tuple(json.loads(param_key))


def encode_fractional(solution: FractionalSolution) -> Tuple[Dict[str, Any], ArrayDict]:
    meta = {
        "kind": "fractional-solution",
        "objective": float(solution.objective),
        "lp_seconds": float(solution.lp_seconds),
        "formulation": str(solution.formulation),
    }
    arrays = {
        "compact_factors": solution.compact_factors,
        "slot_factors": solution.slot_factors,
        "candidate_item_ids": solution.candidate_item_ids,
    }
    return meta, arrays


def decode_fractional(meta: Dict[str, Any], arrays: ArrayDict) -> FractionalSolution:
    return FractionalSolution(
        compact_factors=arrays["compact_factors"],
        slot_factors=arrays["slot_factors"],
        objective=float(meta["objective"]),
        lp_seconds=float(meta["lp_seconds"]),
        formulation=str(meta["formulation"]),
        candidate_item_ids=arrays["candidate_item_ids"],
    )


# --------------------------------------------------------------------------- #
# Context tensors (the non-LP part of a ContextArtifacts snapshot)
# --------------------------------------------------------------------------- #
_TENSOR_FIELDS = ("preference_weight", "pair_weight", "candidate_scores")


def encode_tensors(artifacts: Any) -> Tuple[Dict[str, Any], ArrayDict]:
    """Encode the tensor/candidate part of a :class:`ContextArtifacts`.

    LP solutions are *not* included — they live in their own per-parameter
    entries so they can be loaded (and evicted) independently.
    """
    arrays: ArrayDict = {}
    present = []
    for name in _TENSOR_FIELDS:
        value = getattr(artifacts, name)
        if value is not None:
            arrays[name] = value
            present.append(name)
    candidate_labels = []
    for key, ids in artifacts.candidate_items.items():
        label = "none" if key is None else str(int(key))
        candidate_labels.append(label)
        arrays[f"candidate::{label}"] = ids
    meta = {
        "kind": "context-tensors",
        "fingerprint": artifacts.fingerprint,
        "tensors": present,
        "candidate_labels": candidate_labels,
    }
    return meta, arrays


def decode_tensors(meta: Dict[str, Any], arrays: ArrayDict) -> Dict[str, Any]:
    """Decode a tensors payload into :class:`ContextArtifacts` constructor kwargs."""
    kwargs: Dict[str, Any] = {"fingerprint": str(meta["fingerprint"])}
    for name in _TENSOR_FIELDS:
        kwargs[name] = arrays[name] if name in meta.get("tensors", []) else None
    candidates: Dict[Any, np.ndarray] = {}
    for label in meta.get("candidate_labels", []):
        key = None if label == "none" else int(label)
        candidates[key] = arrays[f"candidate::{label}"]
    kwargs["candidate_items"] = candidates
    return kwargs


# --------------------------------------------------------------------------- #
# Job results (executor checkpoints)
# --------------------------------------------------------------------------- #
def encode_job_result(result: JobResult) -> Tuple[Dict[str, Any], ArrayDict]:
    reports = []
    arrays: ArrayDict = {}
    for position, (name, report) in enumerate(result.reports.items()):
        reports.append(
            {
                "name": name,
                "algorithm": report.algorithm,
                "total_utility": float(report.total_utility),
                "preference_utility": float(report.preference_utility),
                "social_utility": float(report.social_utility),
                "personal_share": float(report.personal_share),
                "social_share": float(report.social_share),
                "seconds": float(report.seconds),
                "mean_regret": float(report.mean_regret),
                "subgroup": _jsonify(report.subgroup),
                "feasible": bool(report.feasible),
                "excess_users": int(report.excess_users),
                "info": _jsonify(report.info),
            }
        )
        arrays[f"regrets::{position}"] = np.asarray(report.regrets, dtype=float)
    meta = {
        "kind": "job-result",
        "job_index": int(result.job_index),
        "provenance": _jsonify(result.provenance),
        "reports": reports,
    }
    return meta, arrays


def decode_job_result(meta: Dict[str, Any], arrays: ArrayDict) -> JobResult:
    reports: Dict[str, EvaluationReport] = {}
    for position, record in enumerate(meta["reports"]):
        reports[str(record["name"])] = EvaluationReport(
            algorithm=str(record["algorithm"]),
            total_utility=record["total_utility"],
            preference_utility=record["preference_utility"],
            social_utility=record["social_utility"],
            personal_share=record["personal_share"],
            social_share=record["social_share"],
            seconds=record["seconds"],
            mean_regret=record["mean_regret"],
            subgroup=dict(record["subgroup"]),
            regrets=arrays[f"regrets::{position}"],
            feasible=bool(record["feasible"]),
            excess_users=int(record["excess_users"]),
            info=dict(record["info"]),
        )
    return JobResult(
        job_index=int(meta["job_index"]),
        reports=reports,
        provenance=dict(meta["provenance"]),
    )


__all__ = [
    "SCHEMA_VERSION",
    "pack_payload",
    "unpack_payload",
    "lp_param_key",
    "parse_lp_param_key",
    "encode_fractional",
    "decode_fractional",
    "encode_tensors",
    "decode_tensors",
    "encode_job_result",
    "decode_job_result",
]
