"""Shared utilities: deterministic RNG handling, validation helpers, timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive_int,
    check_probability_matrix,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "check_fraction",
    "check_non_negative",
    "check_positive_int",
    "check_probability_matrix",
]
