"""Lightweight wall-clock timing used by the experiment harness.

The paper reports execution time for every algorithm (Figures 3, 8, 12).
``Timer`` gives a context-manager / decorator interface so algorithm wrappers
can record runtimes without sprinkling ``time.perf_counter`` calls.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: List[float] = field(default_factory=list)
    _start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            return
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    def reset(self) -> None:
        """Clear all recorded time."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    @property
    def mean_lap(self) -> float:
        """Average duration of recorded laps (0.0 when no laps)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0


def timed(func: Callable[..., T]) -> Callable[..., tuple]:
    """Decorator returning ``(result, seconds)`` instead of ``result``."""

    @functools.wraps(func)
    def wrapper(*args: object, **kwargs: object) -> tuple:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper


class StageTimer:
    """Named-stage timer for multi-phase algorithms (LP solve vs. rounding)."""

    def __init__(self) -> None:
        self.stages: Dict[str, float] = {}

    def stage(self, name: str) -> "_StageContext":
        """Return a context manager recording time under ``name``."""
        return _StageContext(self, name)

    def total(self) -> float:
        """Total time across all stages."""
        return sum(self.stages.values())


class _StageContext:
    def __init__(self, owner: StageTimer, name: str) -> None:
        self._owner = owner
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._owner.stages[self._name] = self._owner.stages.get(self._name, 0.0) + elapsed


__all__ = ["Timer", "timed", "StageTimer"]
