"""Random-number-generator plumbing.

Every randomized component in the library (the AVG rounding scheme, the
synthetic data generators, the user-study simulator) accepts either a seed,
an existing :class:`numpy.random.Generator`, or ``None``.  Centralizing the
coercion here keeps experiments reproducible: a single integer seed threaded
through an experiment fully determines its output.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used by experiment sweeps that fan out over repetitions: each repetition
    receives its own stream so re-ordering repetitions does not change
    results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        seed_seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        seed_seq = seed
    else:
        seed_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def derive_seed(seed: SeedLike, *salt: object) -> int:
    """Derive a deterministic integer seed from ``seed`` and hashable salt.

    Useful when a deterministic sub-seed is needed for a named sub-task
    (e.g. ``derive_seed(base, "timik", n)``) without consuming draws from a
    shared generator.  The mix uses a stable digest (not Python's ``hash``,
    which is randomized per process) so experiments are reproducible across
    runs.
    """
    import zlib

    rng = ensure_rng(seed)
    base = int(rng.integers(0, 2**31 - 1)) if not isinstance(seed, int) else int(seed)
    digest = zlib.crc32(repr((base,) + salt).encode("utf-8"))
    return digest & 0x7FFFFFFF


__all__ = ["SeedLike", "ensure_rng", "spawn_rngs", "derive_seed"]
