"""Input validation helpers shared across the library.

The public API raises :class:`ValueError` with explicit messages rather than
failing deep inside numerical code; these helpers keep those checks short at
call sites.
"""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a non-negative finite number."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval."""
    value = float(value)
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_probability_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate a non-negative, finite 2-D utility matrix."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(matrix < 0):
        raise ValueError(f"{name} contains negative entries")
    return matrix


__all__ = [
    "check_positive_int",
    "check_non_negative",
    "check_fraction",
    "check_probability_matrix",
]
