"""Dataset assembly: turn a graph generator + utility model into SVGIC instances.

This is the main entry point used by the examples, the experiment harness and
the benchmarks.  ``make_instance`` mirrors the paper's experimental setup
(Section 6.1): pick a dataset style (Timik / Epinions / Yelp), a utility
learning model (PIERT / AGREE / GREE), the number of shoppers ``n``, items
``m``, display slots ``k`` and the trade-off weight ``lambda``.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.core.problem import SVGICInstance, SVGICSTInstance
from repro.data import social_graphs
from repro.data.utility_models import DATASET_PROFILES, generate_utilities
from repro.utils.rng import SeedLike, ensure_rng

#: Paper defaults (Section 6.1): k=50, m=10000, n=125.  The library keeps the
#: same knobs but benchmark defaults are scaled down to laptop size.
PAPER_DEFAULTS = {"num_users": 125, "num_items": 10_000, "num_slots": 50}


def _community_labels(graph: nx.Graph) -> np.ndarray:
    """Greedy-modularity community label per node (used by the Yelp profile)."""
    labels = np.zeros(graph.number_of_nodes(), dtype=np.int64)
    if graph.number_of_edges() == 0:
        return labels
    communities = nx.algorithms.community.greedy_modularity_communities(graph)
    for label, community in enumerate(communities):
        for node in community:
            labels[int(node)] = label
    return labels


def make_instance(
    dataset: str = "timik",
    *,
    num_users: int = 25,
    num_items: int = 100,
    num_slots: int = 5,
    social_weight: float = 0.5,
    utility_model: str = "piert",
    seed: SeedLike = None,
    graph: Optional[nx.Graph] = None,
    preference_top_k: Optional[int] = None,
    social_top_k: Optional[int] = None,
    edge_density: Optional[float] = None,
) -> SVGICInstance:
    """Create a synthetic SVGIC instance in the style of one of the paper's datasets.

    Parameters
    ----------
    dataset:
        ``"timik"``, ``"epinions"`` or ``"yelp"`` — controls both the social
        graph generator and the utility-model profile.
    utility_model:
        ``"piert"`` (default), ``"agree"`` or ``"gree"`` (Figure 7).
    graph:
        Optionally supply a pre-built undirected friendship graph (e.g. an
        ego network); its node count must equal ``num_users``.
    preference_top_k:
        Keep only each user's ``top_k`` highest preference entries (ties by
        ascending item id), zeroing the rest — the sparse-first regime where
        CSR views compress the ``(n, m)`` table to ``O(n * top_k)``.
    social_top_k:
        Same truncation applied per directed edge to the ``(E, m)`` social
        table: only the ``top_k`` items with the strongest discussion value
        on each edge keep nonzero weight.  Without it the generated social
        table is fully dense and CSR views cannot compress it.
    edge_density:
        Thin the friendship graph to this fraction of its edges (``(0, 1]``)
        via :func:`repro.data.social_graphs.subsample_edges` before utilities
        are generated.  Node count is unchanged; only social density drops.
    """
    generator = ensure_rng(seed)
    if graph is None:
        graph = social_graphs.generate_graph(dataset, num_users, rng=generator)
    if graph.number_of_nodes() != num_users:
        raise ValueError(
            f"graph has {graph.number_of_nodes()} nodes but num_users={num_users}"
        )
    if edge_density is not None:
        graph = social_graphs.subsample_edges(graph, edge_density, rng=generator)
    edges = social_graphs.directed_edges(graph)
    # Greedy-modularity communities are only consumed by profiles with
    # community-correlated topics (Yelp); skip the (expensive at n >= 10k)
    # computation everywhere else.  _community_labels draws no randomness,
    # so gating it leaves every generated instance bit-identical.
    profile = DATASET_PROFILES.get(dataset.lower())
    communities = (
        _community_labels(graph) if profile is not None and profile.community_topics else None
    )
    tables = generate_utilities(
        edges,
        num_users,
        num_items,
        model=utility_model,
        dataset=dataset,
        rng=generator,
        communities=communities,
    )
    preference = tables.preference
    social = tables.social
    if preference_top_k is not None or social_top_k is not None:
        from repro.core.sparse import top_k_truncate

        if preference_top_k is not None:
            preference = top_k_truncate(preference, preference_top_k)
        if social_top_k is not None and social.size:
            social = top_k_truncate(social, social_top_k)
    return SVGICInstance(
        num_users=num_users,
        num_items=num_items,
        num_slots=num_slots,
        social_weight=social_weight,
        preference=preference,
        edges=edges,
        social=social,
        name=f"{dataset}-{utility_model}",
    )


def make_st_instance(
    dataset: str = "timik",
    *,
    num_users: int = 25,
    num_items: int = 100,
    num_slots: int = 5,
    social_weight: float = 0.5,
    utility_model: str = "piert",
    teleport_discount: float = 0.5,
    max_subgroup_size: int = 8,
    seed: SeedLike = None,
    graph: Optional[nx.Graph] = None,
    preference_top_k: Optional[int] = None,
    social_top_k: Optional[int] = None,
    edge_density: Optional[float] = None,
) -> SVGICSTInstance:
    """Create an SVGIC-ST instance (teleportation discount + subgroup size cap)."""
    base = make_instance(
        dataset,
        num_users=num_users,
        num_items=num_items,
        num_slots=num_slots,
        social_weight=social_weight,
        utility_model=utility_model,
        seed=seed,
        graph=graph,
        preference_top_k=preference_top_k,
        social_top_k=social_top_k,
        edge_density=edge_density,
    )
    return SVGICSTInstance.from_instance(
        base, teleport_discount=teleport_discount, max_subgroup_size=max_subgroup_size
    )


def small_sampled_instance(
    dataset: str = "timik",
    *,
    population_users: int = 200,
    num_users: int = 10,
    num_items: int = 30,
    num_slots: int = 3,
    social_weight: float = 0.5,
    utility_model: str = "piert",
    seed: SeedLike = None,
) -> SVGICInstance:
    """Small instance sampled from a larger synthetic network by random walk.

    Mirrors the paper's "small datasets" setup (Section 6.2): the social
    network is sampled from the full Timik-style graph by random walk and the
    item set by uniform sampling, producing instances small enough for the
    exact IP.
    """
    generator = ensure_rng(seed)
    population = social_graphs.generate_graph(dataset, population_users, rng=generator)
    sampled_nodes = social_graphs.random_walk_sample(population, num_users, rng=generator)
    subgraph = nx.convert_node_labels_to_integers(population.subgraph(sampled_nodes).copy())
    return make_instance(
        dataset,
        num_users=len(sampled_nodes),
        num_items=num_items,
        num_slots=num_slots,
        social_weight=social_weight,
        utility_model=utility_model,
        seed=generator,
        graph=subgraph,
    )


def ego_network_instance(
    dataset: str = "yelp",
    *,
    population_users: int = 150,
    radius: int = 2,
    max_users: int = 12,
    num_items: int = 40,
    num_slots: int = 4,
    social_weight: float = 0.5,
    utility_model: str = "piert",
    seed: SeedLike = None,
) -> SVGICInstance:
    """A 2-hop ego-network instance for the case study of Section 6.6."""
    generator = ensure_rng(seed)
    population = social_graphs.generate_graph(dataset, population_users, rng=generator)
    center = int(max(population.degree, key=lambda item: item[1])[0])
    nodes = social_graphs.ego_network(population, center, radius=radius)
    if len(nodes) > max_users:
        # Keep the centre plus its closest (highest-degree) neighbours.
        ranked = sorted(nodes, key=lambda v: (-population.degree[v], v))
        keep = {center}
        for node in ranked:
            keep.add(int(node))
            if len(keep) >= max_users:
                break
        nodes = sorted(keep)
    subgraph = nx.convert_node_labels_to_integers(population.subgraph(nodes).copy())
    return make_instance(
        dataset,
        num_users=subgraph.number_of_nodes(),
        num_items=num_items,
        num_slots=num_slots,
        social_weight=social_weight,
        utility_model=utility_model,
        seed=generator,
        graph=subgraph,
    )


__all__ = [
    "PAPER_DEFAULTS",
    "make_instance",
    "make_st_instance",
    "small_sampled_instance",
    "ego_network_instance",
]
