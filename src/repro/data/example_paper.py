"""The paper's running example (Example 1/2, Tables 1 and 6-9).

Four shoppers — Alice, Bob, Charlie and Dave — visit a VR store of digital
photography with five items (tripod, DSLR camera, portable storage device,
memory card, self-portrait camera) and three display slots.  Table 1 of the
paper gives the preference utilities ``p(u, c)`` and social utilities
``tau(u, v, c)``; the social network contains the directed friend relations
appearing in that table (Alice-Bob, Alice-Charlie, Alice-Dave and
Bob-Charlie, in both directions where listed).

This instance is used throughout the test suite to pin down the numbers the
paper reports for it:

* the optimal SAVG 3-configuration reaches a scaled utility of 10.35,
* AVG-D reaches 9.85 and one AVG run reaches 9.75 (Examples 4/5),
* the personalized / group / subgroup-by-friendship / subgroup-by-preference
  approaches reach 8.25 / 8.35 / 8.4 / 8.7 (Table 9).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.configuration import SAVGConfiguration
from repro.core.problem import SVGICInstance

USERS: Tuple[str, ...] = ("Alice", "Bob", "Charlie", "Dave")
ITEMS: Tuple[str, ...] = ("c1", "c2", "c3", "c4", "c5")
ITEM_NAMES: Dict[str, str] = {
    "c1": "Tripod",
    "c2": "DSLR Camera",
    "c3": "PSD",
    "c4": "Memory Card",
    "c5": "SP Camera",
}

#: Preference utilities p(u, c) — Table 1, first four columns.
PREFERENCES: Dict[Tuple[str, str], float] = {
    ("Alice", "c1"): 0.8, ("Bob", "c1"): 0.7, ("Charlie", "c1"): 0.0, ("Dave", "c1"): 0.1,
    ("Alice", "c2"): 0.85, ("Bob", "c2"): 1.0, ("Charlie", "c2"): 0.15, ("Dave", "c2"): 0.0,
    ("Alice", "c3"): 0.1, ("Bob", "c3"): 0.15, ("Charlie", "c3"): 0.7, ("Dave", "c3"): 0.3,
    ("Alice", "c4"): 0.05, ("Bob", "c4"): 0.2, ("Charlie", "c4"): 0.6, ("Dave", "c4"): 1.0,
    ("Alice", "c5"): 1.0, ("Bob", "c5"): 0.1, ("Charlie", "c5"): 0.1, ("Dave", "c5"): 0.95,
}

#: Social utilities tau(u, v, c) — Table 1, remaining columns.
SOCIAL: Dict[Tuple[str, str, str], float] = {
    # tau(Alice, Bob, .)
    ("Alice", "Bob", "c1"): 0.2, ("Alice", "Bob", "c2"): 0.05, ("Alice", "Bob", "c3"): 0.1,
    ("Alice", "Bob", "c4"): 0.0, ("Alice", "Bob", "c5"): 0.05,
    # tau(Alice, Charlie, .)
    ("Alice", "Charlie", "c1"): 0.0, ("Alice", "Charlie", "c2"): 0.05,
    ("Alice", "Charlie", "c3"): 0.1, ("Alice", "Charlie", "c4"): 0.0,
    ("Alice", "Charlie", "c5"): 0.3,
    # tau(Alice, Dave, .)
    ("Alice", "Dave", "c1"): 0.2, ("Alice", "Dave", "c2"): 0.05, ("Alice", "Dave", "c3"): 0.1,
    ("Alice", "Dave", "c4"): 0.05, ("Alice", "Dave", "c5"): 0.2,
    # tau(Bob, Alice, .)
    ("Bob", "Alice", "c1"): 0.2, ("Bob", "Alice", "c2"): 0.05, ("Bob", "Alice", "c3"): 0.1,
    ("Bob", "Alice", "c4"): 0.05, ("Bob", "Alice", "c5"): 0.05,
    # tau(Bob, Charlie, .)
    ("Bob", "Charlie", "c1"): 0.0, ("Bob", "Charlie", "c2"): 0.05, ("Bob", "Charlie", "c3"): 0.1,
    ("Bob", "Charlie", "c4"): 0.2, ("Bob", "Charlie", "c5"): 0.0,
    # tau(Charlie, Alice, .)
    ("Charlie", "Alice", "c1"): 0.0, ("Charlie", "Alice", "c2"): 0.05,
    ("Charlie", "Alice", "c3"): 0.1, ("Charlie", "Alice", "c4"): 0.05,
    ("Charlie", "Alice", "c5"): 0.3,
    # tau(Charlie, Bob, .)
    ("Charlie", "Bob", "c1"): 0.1, ("Charlie", "Bob", "c2"): 0.05, ("Charlie", "Bob", "c3"): 0.1,
    ("Charlie", "Bob", "c4"): 0.2, ("Charlie", "Bob", "c5"): 0.05,
    # tau(Dave, Alice, .)
    ("Dave", "Alice", "c1"): 0.3, ("Dave", "Alice", "c2"): 0.05, ("Dave", "Alice", "c3"): 0.05,
    ("Dave", "Alice", "c4"): 0.0, ("Dave", "Alice", "c5"): 0.25,
}


def paper_example_instance(social_weight: float = 0.5) -> SVGICInstance:
    """Build the running-example instance (k = 3 slots).

    ``social_weight`` defaults to the λ = 1/2 value used by Examples 3-5; the
    illustrative computation of Example 2 uses λ = 0.4, which callers can
    request explicitly.
    """
    return SVGICInstance.from_dicts(
        num_slots=3,
        social_weight=social_weight,
        preference=PREFERENCES,
        social=SOCIAL,
        users=list(USERS),
        items=list(ITEMS),
        name="paper-example",
    )


def _config_from_rows(instance: SVGICInstance, rows: Dict[str, Tuple[str, str, str]]) -> SAVGConfiguration:
    user_index = {label: i for i, label in enumerate(instance.user_labels)}
    item_index = {label: i for i, label in enumerate(instance.item_labels)}
    config = SAVGConfiguration.for_instance(instance)
    for user, items in rows.items():
        for slot, item in enumerate(items):
            config.assignment[user_index[user], slot] = item_index[item]
    return config


def optimal_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The SAVG configuration of Figure 1(a)/(b) (total scaled utility 10.35)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c5", "c1", "c2"),
            "Bob": ("c2", "c1", "c4"),
            "Charlie": ("c5", "c3", "c4"),
            "Dave": ("c5", "c1", "c4"),
        },
    )


def avg_example_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The configuration produced by the AVG trace of Example 4 (Table 7, utility 9.75)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c5", "c2", "c1"),
            "Bob": ("c2", "c4", "c1"),
            "Charlie": ("c3", "c4", "c5"),
            "Dave": ("c5", "c4", "c1"),
        },
    )


def avg_d_example_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The configuration produced by the AVG-D trace of Example 5 (Table 8, utility 9.85)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c5", "c1", "c2"),
            "Bob": ("c5", "c1", "c2"),
            "Charlie": ("c5", "c3", "c2"),
            "Dave": ("c5", "c1", "c4"),
        },
    )


def personalized_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The personalized (PER) configuration of Table 9 (utility 8.25)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c5", "c2", "c1"),
            "Bob": ("c2", "c1", "c4"),
            "Charlie": ("c3", "c4", "c2"),
            "Dave": ("c4", "c5", "c3"),
        },
    )


def group_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The group-approach configuration of Table 9 (utility 8.35)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c5", "c1", "c2"),
            "Bob": ("c5", "c1", "c2"),
            "Charlie": ("c5", "c1", "c2"),
            "Dave": ("c5", "c1", "c2"),
        },
    )


def subgroup_by_friendship_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The subgroup-by-friendship configuration of Table 9 (utility 8.4)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c5", "c1", "c4"),
            "Dave": ("c5", "c1", "c4"),
            "Bob": ("c2", "c4", "c3"),
            "Charlie": ("c2", "c4", "c3"),
        },
    )


def subgroup_by_preference_configuration(instance: SVGICInstance) -> SAVGConfiguration:
    """The subgroup-by-preference configuration of Table 9 (utility 8.7)."""
    return _config_from_rows(
        instance,
        {
            "Alice": ("c2", "c1", "c5"),
            "Bob": ("c2", "c1", "c5"),
            "Charlie": ("c4", "c5", "c3"),
            "Dave": ("c4", "c5", "c3"),
        },
    )


FRIENDSHIP_PARTITION = (("Alice", "Dave"), ("Bob", "Charlie"))
PREFERENCE_PARTITION = (("Alice", "Bob"), ("Charlie", "Dave"))


def partition_indices(instance: SVGICInstance, partition: Tuple[Tuple[str, ...], ...]) -> list:
    """Convert a partition of user labels into index lists for baseline overrides."""
    user_index = {label: i for i, label in enumerate(instance.user_labels)}
    return [[user_index[name] for name in part] for part in partition]


__all__ = [
    "USERS",
    "ITEMS",
    "ITEM_NAMES",
    "PREFERENCES",
    "SOCIAL",
    "paper_example_instance",
    "optimal_configuration",
    "avg_example_configuration",
    "avg_d_example_configuration",
    "personalized_configuration",
    "group_configuration",
    "subgroup_by_friendship_configuration",
    "subgroup_by_preference_configuration",
    "FRIENDSHIP_PARTITION",
    "PREFERENCE_PARTITION",
    "partition_indices",
]
