"""Synthetic social-network substrates mirroring the paper's datasets.

The paper evaluates on three real networks that are not redistributable here:

* **Timik** — a 3-D VR social world (850k users, 12M edges).  Characteristics
  the evaluation relies on: a *dense*, scale-free friendship structure with
  comparatively weak local community structure ("VR users generally interact
  with more strangers"), and a small set of extremely popular POIs.
* **Epinions** — a product-review trust network.  Characteristics: *sparse*
  relations (tree-like), therefore lower attainable social utility, and a
  small subset of widely liked items.
* **Yelp** — a location-based social network.  Characteristics: strong local
  community structure and highly diversified item preferences.

The generators below reproduce those structural characteristics at laptop
scale with :mod:`networkx` models; every generator returns a directed edge
array as consumed by :class:`repro.core.problem.SVGICInstance` (each
friendship contributes both directions, since the paper's ``tau`` is defined
per directed edge).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


def _to_directed_edges(graph: nx.Graph) -> np.ndarray:
    """Expand an undirected graph into a (2|E|, 2) directed edge array."""
    edges: List[Tuple[int, int]] = []
    for u, v in graph.edges():
        edges.append((int(u), int(v)))
        edges.append((int(v), int(u)))
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(sorted(edges), dtype=np.int64)


def _relabel_consecutive(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving structure."""
    mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def timik_like_graph(num_users: int, *, rng: SeedLike = None) -> nx.Graph:
    """Dense scale-free VR-style friendship graph (Barabási-Albert + random shortcuts).

    Average degree is around 6-8 for moderate ``num_users``; shortcuts weaken
    community structure, matching the paper's observation that Timik's local
    communities are less apparent than Yelp's.
    """
    generator = ensure_rng(rng)
    if num_users <= 1:
        graph = nx.empty_graph(num_users)
        return graph
    attach = min(3, num_users - 1)
    graph = nx.barabasi_albert_graph(num_users, attach, seed=int(generator.integers(2**31 - 1)))
    # Random "stranger" shortcuts: VR users befriend people outside their circle.
    num_shortcuts = max(1, num_users // 3)
    for _ in range(num_shortcuts):
        u, v = generator.integers(0, num_users, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    return _relabel_consecutive(graph)


def epinions_like_graph(num_users: int, *, rng: SeedLike = None) -> nx.Graph:
    """Sparse trust-network-style graph (preferential attachment tree + few extra edges)."""
    generator = ensure_rng(rng)
    if num_users <= 1:
        return nx.empty_graph(num_users)
    graph = nx.barabasi_albert_graph(num_users, 1, seed=int(generator.integers(2**31 - 1)))
    # A few reciprocal trust triangles, keeping the network sparse overall.
    num_extra = max(1, num_users // 6)
    for _ in range(num_extra):
        u, v = generator.integers(0, num_users, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    return _relabel_consecutive(graph)


def yelp_like_graph(
    num_users: int,
    *,
    rng: SeedLike = None,
    community_size: int = 8,
    intra_probability: float = 0.55,
    inter_probability: float = 0.02,
) -> nx.Graph:
    """LBSN-style graph with pronounced community structure (planted partition)."""
    generator = ensure_rng(rng)
    if num_users <= 1:
        return nx.empty_graph(num_users)
    num_communities = max(1, int(np.ceil(num_users / community_size)))
    sizes = [community_size] * num_communities
    sizes[-1] = num_users - community_size * (num_communities - 1)
    if sizes[-1] <= 0:
        sizes = sizes[:-1]
        sizes[-1] += num_users - sum(sizes)
    graph = nx.random_partition_graph(
        sizes, intra_probability, inter_probability, seed=int(generator.integers(2**31 - 1))
    )
    graph = nx.Graph(graph)  # strip partition metadata container type
    # Make sure no user is fully isolated (everyone has at least one friend).
    degrees = dict(graph.degree())
    for node, degree in degrees.items():
        if degree == 0 and num_users > 1:
            other = int(generator.integers(0, num_users))
            if other == node:
                other = (node + 1) % num_users
            graph.add_edge(node, other)
    return _relabel_consecutive(graph)


GRAPH_GENERATORS = {
    "timik": timik_like_graph,
    "epinions": epinions_like_graph,
    "yelp": yelp_like_graph,
}


def generate_graph(dataset: str, num_users: int, *, rng: SeedLike = None, **kwargs: object) -> nx.Graph:
    """Dispatch to one of the dataset-style graph generators by name."""
    key = dataset.lower()
    if key not in GRAPH_GENERATORS:
        raise ValueError(f"unknown dataset {dataset!r}; choose from {sorted(GRAPH_GENERATORS)}")
    return GRAPH_GENERATORS[key](num_users, rng=rng, **kwargs)


def directed_edges(graph: nx.Graph) -> np.ndarray:
    """Directed edge array of a friendship graph (both directions per edge)."""
    return _to_directed_edges(graph)


def subsample_edges(
    graph: nx.Graph, keep_fraction: float, *, rng: SeedLike = None
) -> nx.Graph:
    """Thin a friendship graph to ``keep_fraction`` of its edges, uniformly.

    The node set is preserved (users may become isolated), so instance shapes
    are unaffected — only social density changes.  The sampled edge subset is
    a deterministic function of the seed: undirected edges are canonicalized
    to sorted ``(lo, hi)`` tuples and sorted before drawing, so the result
    does not depend on the generator's internal edge ordering.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    num_edges = graph.number_of_edges()
    if keep_fraction == 1.0 or num_edges == 0:
        return graph
    generator = ensure_rng(rng)
    edges = sorted(
        (min(int(u), int(v)), max(int(u), int(v))) for u, v in graph.edges()
    )
    keep_count = int(round(keep_fraction * num_edges))
    keep_ids = generator.choice(num_edges, size=keep_count, replace=False)
    thinned = nx.Graph()
    thinned.add_nodes_from(range(graph.number_of_nodes()))
    thinned.add_edges_from(edges[i] for i in sorted(int(i) for i in keep_ids))
    return thinned


def random_walk_sample(
    graph: nx.Graph, sample_size: int, *, rng: SeedLike = None, restart_probability: float = 0.15
) -> List[int]:
    """Sample ``sample_size`` nodes by a random walk with restarts (Section 6.2 setting).

    The paper samples its "small datasets" from Timik by random walk [55];
    the walk keeps the sampled subgraph connected and degree-biased like the
    original network.
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    nodes = list(graph.nodes())
    if sample_size >= len(nodes):
        return sorted(int(v) for v in nodes)
    generator = ensure_rng(rng)
    start = int(nodes[int(generator.integers(0, len(nodes)))])
    visited = {start}
    current = start
    steps_without_progress = 0
    while len(visited) < sample_size:
        neighbors = list(graph.neighbors(current))
        if not neighbors or generator.random() < restart_probability:
            current = int(nodes[int(generator.integers(0, len(nodes)))])
        else:
            current = int(neighbors[int(generator.integers(0, len(neighbors)))])
        if current in visited:
            steps_without_progress += 1
            if steps_without_progress > 50 * len(nodes):
                # Disconnected remainder: fill with random unvisited nodes.
                remaining = [int(v) for v in nodes if v not in visited]
                generator.shuffle(remaining)
                visited.update(remaining[: sample_size - len(visited)])
                break
        else:
            visited.add(current)
            steps_without_progress = 0
    return sorted(visited)


def ego_network(graph: nx.Graph, center: int, radius: int = 2) -> List[int]:
    """Nodes of the ``radius``-hop ego network around ``center`` (case study, Section 6.6)."""
    ego = nx.ego_graph(graph, center, radius=radius)
    return sorted(int(v) for v in ego.nodes())


__all__ = [
    "timik_like_graph",
    "epinions_like_graph",
    "yelp_like_graph",
    "generate_graph",
    "directed_edges",
    "subsample_edges",
    "random_walk_sample",
    "ego_network",
    "GRAPH_GENERATORS",
]
