"""Synthetic preference / social utility models (PIERT-, AGREE- and GREE-like).

The paper does not hand-tune ``p(u,c)`` and ``tau(u,v,c)``: it learns them
from check-in / review histories with three recommendation models —
PIERT [45] (joint social-influence + latent-topic model, the default),
AGREE and GREE [9] (attentive group recommendation; AGREE assumes equal
social influence between users, GREE learns a weight per (user, user, item)
triple).  Those learned inputs are not available offline, so this module
generates utilities from an explicit latent-topic model that reproduces the
*distinguishing properties* the paper's Figure 7 discussion relies on:

* ``piert`` — social utility depends on the pair *and* the item (topic
  affinity of the co-viewing friend), so item choice matters socially;
* ``agree`` — social influence is uniform across pairs (only the item's
  topic popularity matters);
* ``gree``  — heterogeneous per-triple weights with only a weak item signal,
  so the achievable social utility differentiates less across items.

Dataset profiles (Timik / Epinions / Yelp) control popularity skew, topic
diversity across communities, and the overall social intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical knobs describing one of the paper's datasets.

    Attributes
    ----------
    popularity_concentration:
        Dirichlet-like skew of item popularity; small values create a few
        very popular items (Timik's transportation hubs, Epinions' widely
        adopted products).
    topic_diversity:
        How spread out user interests are across topics; large values give
        Yelp-style diversified preferences where friends rarely align.
    social_intensity:
        Overall scale of ``tau`` relative to ``p`` (Epinions is sparse and
        weak, Timik/Yelp stronger).
    community_topics:
        Whether users in the same graph community share a dominant topic
        (strong for Yelp, weaker for Timik).
    """

    popularity_concentration: float
    topic_diversity: float
    social_intensity: float
    community_topics: bool


DATASET_PROFILES = {
    "timik": DatasetProfile(
        popularity_concentration=0.25,
        topic_diversity=0.5,
        social_intensity=0.35,
        community_topics=False,
    ),
    "epinions": DatasetProfile(
        popularity_concentration=0.3,
        topic_diversity=0.45,
        social_intensity=0.15,
        community_topics=False,
    ),
    "yelp": DatasetProfile(
        popularity_concentration=0.6,
        topic_diversity=1.2,
        social_intensity=0.4,
        community_topics=True,
    ),
}


@dataclass
class UtilityTables:
    """Generated utility inputs for one instance."""

    preference: np.ndarray  # (n, m)
    social: np.ndarray  # (E, m), aligned with the directed edge array


def _latent_factors(
    num_users: int,
    num_items: int,
    num_topics: int,
    profile: DatasetProfile,
    generator: np.random.Generator,
    communities: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """User-topic and item-topic factors plus item popularity."""
    item_topics = generator.dirichlet(np.full(num_topics, 0.4), size=num_items)
    popularity = generator.dirichlet(
        np.full(num_items, profile.popularity_concentration)
    )
    popularity = popularity / popularity.max()

    if profile.community_topics and communities is not None:
        user_topics = np.zeros((num_users, num_topics))
        unique = np.unique(communities)
        base_per_community = {
            int(c): generator.dirichlet(np.full(num_topics, 0.3)) for c in unique
        }
        for u in range(num_users):
            base = base_per_community[int(communities[u])]
            noise = generator.dirichlet(np.full(num_topics, profile.topic_diversity))
            user_topics[u] = 0.7 * base + 0.3 * noise
    else:
        user_topics = generator.dirichlet(
            np.full(num_topics, profile.topic_diversity), size=num_users
        )
    return user_topics, item_topics, popularity


def _preference_from_factors(
    user_topics: np.ndarray,
    item_topics: np.ndarray,
    popularity: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """Preference = topic affinity blended with item popularity, rescaled to [0, 1].

    The affinity term is sharpened (squared) so that each user's favourite
    items stand out clearly from the rest — the preference diversity that
    makes the group approach sacrifice individual interests, as in the real
    datasets.
    """
    affinity = user_topics @ item_topics.T
    affinity = affinity / (affinity.max(axis=1, keepdims=True) + 1e-12)
    affinity = affinity ** 2
    noise = generator.uniform(0.0, 0.05, size=affinity.shape)
    preference = 0.8 * affinity + 0.15 * popularity[None, :] + noise
    return np.clip(preference / (preference.max() + 1e-12), 0.0, 1.0)


def generate_utilities(
    edges: np.ndarray,
    num_users: int,
    num_items: int,
    *,
    model: str = "piert",
    dataset: str = "timik",
    num_topics: int = 8,
    rng: SeedLike = None,
    communities: Optional[np.ndarray] = None,
) -> UtilityTables:
    """Generate ``(p, tau)`` tables for a social network.

    Parameters
    ----------
    edges:
        ``(E, 2)`` directed edge array of the social network.
    model:
        ``"piert"`` (default), ``"agree"`` or ``"gree"``.
    dataset:
        Dataset profile name (``"timik"``, ``"epinions"``, ``"yelp"``).
    communities:
        Optional per-user community labels (used when the profile couples
        topics to communities, i.e. Yelp).
    """
    model = model.lower()
    if model not in {"piert", "agree", "gree"}:
        raise ValueError(f"unknown utility model {model!r}; use 'piert', 'agree' or 'gree'")
    profile = DATASET_PROFILES.get(dataset.lower())
    if profile is None:
        raise ValueError(f"unknown dataset profile {dataset!r}; choose from {sorted(DATASET_PROFILES)}")
    generator = ensure_rng(rng)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)

    user_topics, item_topics, popularity = _latent_factors(
        num_users, num_items, num_topics, profile, generator, communities
    )
    preference = _preference_from_factors(user_topics, item_topics, popularity, generator)

    num_edges = edges.shape[0]
    social = np.zeros((num_edges, num_items), dtype=float)
    if num_edges:
        # Pairwise trust strength (shared-topic affinity between the two users).
        trust = np.einsum("et,et->e", user_topics[edges[:, 0]], user_topics[edges[:, 1]])
        trust = trust / (trust.max() + 1e-12)
        item_signal = item_topics @ item_topics.mean(axis=0)
        item_signal = item_signal / (item_signal.max() + 1e-12)

        if model == "piert":
            # Item-and-pair dependent: how much the *viewing partner* cares
            # about the item modulates the discussion value.
            partner_affinity = user_topics[edges[:, 1]] @ item_topics.T
            partner_affinity = partner_affinity / (partner_affinity.max() + 1e-12)
            social = trust[:, None] * (0.6 * partner_affinity + 0.4 * popularity[None, :])
        elif model == "agree":
            # Equal social influence between users: only the item matters.
            social = np.tile(0.5 * item_signal + 0.5 * popularity, (num_edges, 1))
        else:  # gree
            # Heterogeneous per-triple weights, weak item structure.
            noise = generator.uniform(0.3, 1.0, size=(num_edges, num_items))
            social = trust[:, None] * noise * (0.8 + 0.2 * item_signal[None, :])
        social = profile.social_intensity * social / (social.max() + 1e-12)
        social = np.clip(social, 0.0, 1.0)
        if model != "agree":
            # Small multiplicative jitter so tau(u,v,c) != tau(v,u,c) in
            # general; AGREE keeps social influence identical across pairs.
            social *= generator.uniform(0.85, 1.15, size=social.shape)
            social = np.clip(social, 0.0, 1.0)

    return UtilityTables(preference=preference, social=social)


__all__ = ["DatasetProfile", "DATASET_PROFILES", "UtilityTables", "generate_utilities"]
