"""Data substrates: synthetic social graphs, utility models, datasets, and the paper example.

The paper's evaluation inputs (Timik / Epinions / Yelp check-in and review
data, PIERT/AGREE/GREE-learned utilities, and a VR user study) are not
redistributable; this package provides synthetic substitutes that preserve
the structural characteristics the evaluation relies on.  See DESIGN.md for
the substitution table.
"""

from repro.data import adversarial, churn, datasets, example_paper, social_graphs, user_study, utility_models
from repro.data.churn import ChurnEvent, ChurnTrace, make_churn_trace
from repro.data.datasets import (
    ego_network_instance,
    make_instance,
    make_st_instance,
    small_sampled_instance,
)
from repro.data.example_paper import paper_example_instance

__all__ = [
    "adversarial",
    "churn",
    "datasets",
    "example_paper",
    "social_graphs",
    "user_study",
    "utility_models",
    "make_instance",
    "make_st_instance",
    "small_sampled_instance",
    "ego_network_instance",
    "paper_example_instance",
    "ChurnEvent",
    "ChurnTrace",
    "make_churn_trace",
]
