"""Simulated user study (Section 6.9 substitute).

The paper recruits 44 participants, elicits their preference utilities and a
personal ``lambda`` with questionnaires, learns social utilities with PIERT,
lets each group shop in a Unity/hTC-VIVE VR store under configurations from
four algorithms, and records 1-5 Likert satisfaction scores.  It reports (a)
the distribution of elicited ``lambda`` (range 0.15-0.85, mean 0.53), (b)
a strong correlation between the model's SAVG utility and reported
satisfaction (Spearman 0.835, Pearson 0.814), and (c) AVG winning on both.

Hardware and participants are unavailable offline, so this module simulates
the study: a small questionnaire-style population (Likert-scale preferences,
per-user ``lambda`` drawn from the reported range) and a satisfaction model
in which a participant's reported score is a noisy monotone function of her
achieved per-user SAVG utility — exactly the relationship the paper's own
correlation analysis validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.configuration import SAVGConfiguration
from repro.core.objective import optimistic_user_upper_bound, per_user_utility
from repro.core.problem import SVGICInstance
from repro.data.datasets import make_instance
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class UserStudyPopulation:
    """A simulated participant pool.

    Attributes
    ----------
    instance:
        The SVGIC instance describing the participants, their friendships and
        the questionnaire-derived utilities.  ``social_weight`` is the mean of
        the per-user lambdas, matching how the paper aggregates them.
    user_lambdas:
        Per-participant elicited ``lambda`` values in [0.15, 0.85].
    """

    instance: SVGICInstance
    user_lambdas: np.ndarray


def generate_population(
    num_participants: int = 44,
    *,
    num_items: int = 40,
    num_slots: int = 5,
    seed: SeedLike = None,
) -> UserStudyPopulation:
    """Create a questionnaire-style participant pool.

    Preferences are quantized to a 5-point Likert scale (divided by 5, as the
    paper normalizes questionnaire answers to utilities); per-user lambdas are
    sampled from a truncated normal centred at the reported mean 0.53.
    """
    generator = ensure_rng(seed)
    base = make_instance(
        "timik",
        num_users=num_participants,
        num_items=num_items,
        num_slots=num_slots,
        social_weight=0.5,
        seed=generator,
    )
    # Quantize preferences to Likert levels {0.2, 0.4, 0.6, 0.8, 1.0}.
    likert = np.ceil(np.clip(base.preference, 1e-9, 1.0) * 5.0) / 5.0
    lambdas = np.clip(generator.normal(0.53, 0.15, size=num_participants), 0.15, 0.85)
    instance = SVGICInstance(
        num_users=base.num_users,
        num_items=base.num_items,
        num_slots=base.num_slots,
        social_weight=float(np.mean(lambdas)),
        preference=likert,
        edges=base.edges,
        social=base.social,
        name="user-study",
    )
    return UserStudyPopulation(instance=instance, user_lambdas=lambdas)


def simulate_satisfaction(
    instance: SVGICInstance,
    config: SAVGConfiguration,
    *,
    rng: SeedLike = None,
    noise_scale: float = 0.35,
) -> np.ndarray:
    """Simulate per-participant Likert (1-5) satisfaction for a configuration.

    Satisfaction is an affine function of the participant's *happiness ratio*
    (achieved utility over her optimistic upper bound, the quantity behind the
    paper's regret metric) plus Gaussian noise, clipped and rounded to the
    1-5 Likert scale.
    """
    generator = ensure_rng(rng)
    achieved = per_user_utility(instance, config)
    upper = optimistic_user_upper_bound(instance)
    upper = np.where(upper > 0, upper, 1.0)
    happiness = np.clip(achieved / upper, 0.0, 1.0)
    raw = 1.0 + 4.0 * happiness + generator.normal(0.0, noise_scale, size=happiness.shape)
    return np.clip(np.round(raw), 1.0, 5.0)


def correlation_report(utilities: Sequence[float], satisfactions: Sequence[float]) -> Dict[str, float]:
    """Spearman and Pearson correlation between utility and mean satisfaction."""
    from scipy import stats

    utilities = np.asarray(utilities, dtype=float)
    satisfactions = np.asarray(satisfactions, dtype=float)
    if utilities.size < 2 or np.allclose(utilities, utilities[0]):
        return {"spearman": 0.0, "pearson": 0.0}
    spearman = float(stats.spearmanr(utilities, satisfactions).statistic)
    pearson = float(stats.pearsonr(utilities, satisfactions).statistic)
    return {"spearman": spearman, "pearson": pearson}


__all__ = [
    "UserStudyPopulation",
    "generate_population",
    "simulate_satisfaction",
    "correlation_report",
]
