"""Adversarial / analytical instances from the paper's theory sections.

* :func:`group_gap_instance` — the instance ``I_G`` of Theorem 1: ``n`` users
  with disjoint favourite itemsets and no social edges; the optimal SVGIC
  solution beats the best *group* (single shared itemset) solution by a
  factor of exactly ``n``.
* :func:`personalized_gap_instance` — the instance ``I_P`` of Theorem 1: a
  complete friendship graph, uniform social utility, and near-uniform
  preferences; the optimal SVGIC solution beats the best *personalized*
  solution by ``Θ(n)``.
* :func:`indifferent_instance` — the Lemma-3 instance (all users indifferent
  among all items, constant social utility) on which independent rounding
  only achieves ``O(1/m)`` of the optimum while CSF recovers it.

These are used by the property tests and by the Theorem-1 gap benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SVGICInstance


def group_gap_instance(num_users: int, num_slots: int = 2) -> SVGICInstance:
    """Theorem 1, instance ``I_G``: disjoint favourites, empty social network.

    Each user ``u_i`` prefers exactly the ``k`` items
    ``{c_i, c_{n+i}, ..., c_{(k-1)n+i}}`` with utility 1 and everything else
    with 0; there are no social edges.  ``OPT / OPT_G = n``.
    """
    n, k = num_users, num_slots
    m = n * k
    preference = np.zeros((n, m))
    for u in range(n):
        for j in range(k):
            preference[u, j * n + u] = 1.0
    return SVGICInstance(
        num_users=n,
        num_items=m,
        num_slots=k,
        social_weight=0.5,
        preference=preference,
        edges=np.empty((0, 2), dtype=np.int64),
        social=np.empty((0, m)),
        name="theorem1-IG",
    )


def personalized_gap_instance(
    num_users: int, num_slots: int = 2, epsilon: float = 1e-3, social_weight: float = 0.5
) -> SVGICInstance:
    """Theorem 1, instance ``I_P``: complete graph, uniform tau, near-uniform preferences.

    Each user prefers her personal itemset only ``epsilon`` more than every
    other item, while any co-display yields social utility 1 per directed
    edge; the personalized approach forfeits all of it.
    """
    n, k = num_users, num_slots
    m = n * k
    preference = np.full((n, m), 1.0 - epsilon)
    for u in range(n):
        for j in range(k):
            preference[u, j * n + u] = 1.0
    edges = np.asarray(
        [(u, v) for u in range(n) for v in range(n) if u != v], dtype=np.int64
    )
    social = np.ones((edges.shape[0], m))
    return SVGICInstance(
        num_users=n,
        num_items=m,
        num_slots=k,
        social_weight=social_weight,
        preference=preference,
        edges=edges,
        social=social,
        name="theorem1-IP",
    )


def indifferent_instance(
    num_users: int, num_items: int, num_slots: int = 2, tau: float = 1.0
) -> SVGICInstance:
    """Lemma 3 instance: zero preferences, constant social utility on a complete graph.

    The optimum co-displays an arbitrary distinct item per slot to everyone;
    independent rounding hits a common item only with probability ``1/m`` per
    pair and slot.
    """
    n, m, k = num_users, num_items, num_slots
    preference = np.zeros((n, m))
    edges = np.asarray(
        [(u, v) for u in range(n) for v in range(n) if u != v], dtype=np.int64
    )
    social = np.full((edges.shape[0], m), float(tau))
    return SVGICInstance(
        num_users=n,
        num_items=m,
        num_slots=k,
        social_weight=0.5,
        preference=preference,
        edges=edges,
        social=social,
        name="lemma3-indifferent",
    )


__all__ = ["group_gap_instance", "personalized_gap_instance", "indifferent_instance"]
