"""Micro-batch compatibility grouping and the batched LP solve entry points.

Two requests may share one block-diagonal LP solve when their instances
belong to the same model family (type, slot count ``k``, social weight
``lambda``, teleportation/size-cap scalars) and they ask for identical LP
parameters — exactly the inputs, besides the utility tables themselves, that
shape each block's constraint system.  Instance *sizes* (users, items,
edges) may differ: blocks are stacked, not broadcast.

:func:`solve_fractional_batch` is the in-process solve;
:func:`_solve_batch_in_worker` is the module-level process-pool entry point
(picklable under both ``fork`` and ``spawn``) that additionally reports the
worker's PID, which the service surfaces as :attr:`ServeResult.solver_pid`
so tests can assert pool workers are reused rather than respawned.
"""

from __future__ import annotations

import os
from typing import Any, List, Sequence, Tuple

from repro.core.lp import FractionalSolution, solve_lp_relaxations_stacked
from repro.core.problem import SVGICInstance
from repro.serving.request import LPParameters


def compatibility_key(instance: SVGICInstance, lp_params: LPParameters) -> Tuple[Any, ...]:
    """The grouping key under which requests may be co-batched.

    Everything the stacked assembly shares across blocks: the instance
    family and its scalar knobs plus the full LP parameter key.  Requests
    with different keys are never placed in one batch — they would solve
    under different formulations or constraint families.
    """
    return (
        type(instance).__name__,
        int(instance.num_slots),
        float(instance.social_weight),
        float(getattr(instance, "teleport_discount", -1.0)),
        int(getattr(instance, "max_subgroup_size", -1)),
        lp_params.cache_key(),
    )


def solve_fractional_batch(
    instances: Sequence[SVGICInstance], lp_params: LPParameters
) -> List[FractionalSolution]:
    """Solve the LP relaxations of ``instances`` in one block-diagonal solve."""
    return solve_lp_relaxations_stacked(
        instances,
        formulation=lp_params.formulation,
        max_candidate_items=lp_params.max_candidate_items,
        prune_items=lp_params.prune_items,
        enforce_size_constraint=lp_params.enforce_size_constraint,
    )


def _solve_batch_in_worker(
    instances: Sequence[SVGICInstance], lp_params: LPParameters
) -> Tuple[List[FractionalSolution], int]:
    """Process-pool entry point: the batched solutions plus the worker's PID."""
    return solve_fractional_batch(instances, lp_params), os.getpid()


def _decode_in_worker(
    instance: SVGICInstance,
    algorithm: str,
    seed: int,
    key: Tuple[Any, ...],
    solution: FractionalSolution,
    source: str,
    store: Any,
) -> Tuple[Any, int, int, float, int]:
    """Process-pool entry point for one request's decode stage.

    Mirrors the service's in-thread decode exactly: a fresh
    :class:`~repro.core.pipeline.SolveContext` seeded with the request's LP
    solution, the registered algorithm run under the request-derived
    generator — so a decoded result is a function of the request alone,
    independent of which worker (or arrival order) decoded it.  ``store`` is
    the service's (picklable) artifact store, re-opened worker-side so
    fallback LP solves still hit the warm path.  Returns
    ``(result, lp_solves, lp_store_hits, decode_seconds, pid)``.
    """
    import time

    from repro.core.pipeline import SolveContext
    from repro.core.registry import run_registered
    from repro.utils.rng import derive_seed

    started = time.perf_counter()
    context = SolveContext(instance)
    if store is not None:
        context.attach_store(store)
    context.install_lp_solution(key, solution, source=source)
    result = run_registered(
        algorithm, instance, context=context, rng=derive_seed(seed, algorithm)
    )
    return (
        result,
        context.lp_solves,
        context.lp_store_hits,
        time.perf_counter() - started,
        os.getpid(),
    )


__all__ = ["compatibility_key", "solve_fractional_batch"]
