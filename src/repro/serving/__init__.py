"""Online serving layer: a long-lived solver service with micro-batched LPs.

The experiment layer (:mod:`repro.experiments`) runs *offline* sweeps; this
package serves *online* configuration requests the way a production VR
platform would face them — concurrent, latency-sensitive, heavily repeated:

* :class:`~repro.serving.service.SolverService` — a thread-safe service
  owning a warm :class:`~repro.store.ArtifactStore` and an optional
  persistent worker pool.  Requests whose LP relaxation is already stored
  are answered without touching a solver; the rest are micro-batched —
  compatible requests arriving within a bounded window share **one**
  block-diagonal LP solve (:func:`~repro.core.lp.solve_lp_relaxations_stacked`)
  and are decoded independently with per-request derived seeds.
* :mod:`~repro.serving.replay` — open-loop (Poisson) and closed-loop
  traffic replay harnesses producing p50/p99 latency and throughput
  reports; ``benchmarks/bench_serving_replay.py`` builds on them.
"""

from repro.serving.batching import compatibility_key, solve_fractional_batch
from repro.serving.replay import (
    ReplayReport,
    replay_closed_loop,
    replay_open_loop,
)
from repro.serving.request import (
    ConfigurationRequest,
    LPParameters,
    ServeResult,
    ServingTicket,
)
from repro.serving.service import SolverService

__all__ = [
    "SolverService",
    "ConfigurationRequest",
    "LPParameters",
    "ServeResult",
    "ServingTicket",
    "ReplayReport",
    "replay_closed_loop",
    "replay_open_loop",
    "compatibility_key",
    "solve_fractional_batch",
]
