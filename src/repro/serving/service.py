"""The long-lived :class:`SolverService`: warm store, worker pool, micro-batcher.

The service owns a warm :class:`repro.store.ArtifactStore` and (optionally) a
persistent process pool, and answers concurrent configuration requests
through a thread-safe submit/future API:

* ``submit()`` enqueues a :class:`~repro.serving.request.ConfigurationRequest`
  and returns a :class:`~repro.serving.request.ServingTicket` immediately.
* A single daemon **batcher thread** claims pending requests.  It opens a
  bounded wait window (``batch_window`` seconds) on the oldest request and
  co-batches every compatible request — same instance family and LP
  parameters (:func:`~repro.serving.batching.compatibility_key`) — that is
  already queued or arrives within the window, up to ``max_batch_size``.
* Requests whose LP relaxation is already in the store are answered from it
  without touching a solver (``cache_hit=True``, zero LP solves).  The
  remaining requests are deduplicated by instance fingerprint and solved as
  **one block-diagonal LP** (:func:`~repro.core.lp.solve_lp_relaxations_stacked`)
  — in-process, or on the persistent pool when ``workers >= 1``.  Every
  fresh solution is written to the store under its own instance fingerprint.
* Each request is then decoded independently: a fresh
  :class:`~repro.core.pipeline.SolveContext` is seeded with the request's LP
  solution (:meth:`~repro.core.pipeline.SolveContext.install_lp_solution`)
  and the registered algorithm runs with a generator derived from
  ``derive_seed(request.seed, algorithm)`` — results are a function of the
  request alone, never of arrival order or batch composition.  With
  ``workers >= 1`` and more than one live request, the decode stage is
  fanned out across the same persistent pool (one task per request,
  ``ServeResult.decode_pid`` records where each ran); the per-request
  seeding makes the parallel and serial paths produce identical results.

Cancellation is deterministic: futures are claimed
(``set_running_or_notify_cancel``) only when the batcher starts processing
their batch, so a ``ticket.cancel()`` that lands during the wait window
always wins and the request is never solved.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.pipeline import instance_fingerprint
from repro.core.problem import SVGICInstance
from repro.core.registry import get_algorithm
from repro.experiments.executor import resolve_worker_count
from repro.serving.batching import (
    _decode_in_worker,
    _solve_batch_in_worker,
    compatibility_key,
    solve_fractional_batch,
)
from repro.serving.request import (
    ConfigurationRequest,
    LPParameters,
    ServeResult,
    ServingTicket,
)
from repro.store import ArtifactStore


@dataclass
class _Pending:
    """One queued request: its ticket, compatibility key and arrival time."""

    ticket: ServingTicket
    key: tuple
    submitted_at: float

    @property
    def request(self) -> ConfigurationRequest:
        return self.ticket.request


class SolverService:
    """Thread-safe micro-batching front end over the solver pipeline.

    Parameters
    ----------
    store:
        ``None`` (no persistence — every request solves), a path (an
        :class:`~repro.store.ArtifactStore` is opened there), or an existing
        store instance.  The store index is thread-safe, so the batcher and
        callers may share it.
    workers:
        ``0`` (default) solves batches in the batcher thread; ``>= 1``
        maintains a **persistent** :class:`~concurrent.futures.ProcessPoolExecutor`
        of that many workers (clamped to the CPU count with a warning,
        :func:`~repro.experiments.executor.resolve_worker_count`) that
        survives across batches — workers are reused, never respawned per
        request.
    batch_window:
        Seconds the batcher waits, after claiming the oldest pending
        request, for further compatible requests before solving.
    max_batch_size:
        Upper bound on requests per batch; a full batch fires immediately
        without waiting out the window.
    default_algorithm:
        Registered algorithm used when a request does not name one.
    mp_context:
        Optional multiprocessing start method for the worker pool.
    """

    def __init__(
        self,
        store: Union[None, str, os.PathLike, ArtifactStore] = None,
        *,
        workers: int = 0,
        batch_window: float = 0.01,
        max_batch_size: int = 16,
        default_algorithm: str = "AVG-D",
        mp_context: Optional[str] = None,
        latency_window: int = 4096,
    ) -> None:
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if isinstance(store, (str, os.PathLike)):
            store = ArtifactStore(store)
        self.store = store
        self.workers = 0 if workers == 0 else resolve_worker_count(workers)
        self.batch_window = float(batch_window)
        self.max_batch_size = int(max_batch_size)
        self.default_algorithm = default_algorithm
        self.mp_context = mp_context

        self._queue: Deque[_Pending] = deque()
        self._wakeup = threading.Condition()
        self._closed = False
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._next_request_id = 0
        self._next_batch_id = 0
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "cancelled": 0,
            "cache_hits": 0,
            "batches": 0,
            "lp_batches": 0,
            "lp_instances_solved": 0,
            "fallback_solves": 0,
        }
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))
        self._batcher = threading.Thread(
            target=self._batch_loop, name="solver-service-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        instance: SVGICInstance,
        *,
        algorithm: Optional[str] = None,
        seed: int = 0,
        lp_params: Optional[LPParameters] = None,
    ) -> ServingTicket:
        """Enqueue one configuration request; returns its ticket immediately."""
        name = algorithm if algorithm is not None else self.default_algorithm
        get_algorithm(name)  # fail fast in the caller, not the batcher
        request = ConfigurationRequest(
            instance=instance,
            algorithm=name,
            seed=int(seed),
            lp_params=lp_params if lp_params is not None else LPParameters(),
        )
        future: "Future[ServeResult]" = Future()
        with self._wakeup:
            if self._closed:
                raise RuntimeError("SolverService is closed")
            self._next_request_id += 1
            ticket = ServingTicket(self._next_request_id, request, future)
            self._queue.append(
                _Pending(
                    ticket=ticket,
                    key=compatibility_key(instance, request.lp_params),
                    submitted_at=time.perf_counter(),
                )
            )
            self._wakeup.notify_all()
        with self._stats_lock:
            self._counters["submitted"] += 1
        return ticket

    def solve(
        self,
        instance: SVGICInstance,
        *,
        algorithm: Optional[str] = None,
        seed: int = 0,
        lp_params: Optional[LPParameters] = None,
        timeout: Optional[float] = None,
    ) -> ServeResult:
        """Submit one request and block for its result (convenience wrapper)."""
        return self.submit(
            instance, algorithm=algorithm, seed=seed, lp_params=lp_params
        ).result(timeout=timeout)

    def stats(self) -> Dict[str, int]:
        """Snapshot of the service counters (see the class docstring)."""
        with self._stats_lock:
            return dict(self._counters)

    def latency_stats(self) -> Dict[str, float]:
        """p50/p99/mean end-to-end latency over the recent-request window."""
        with self._stats_lock:
            latencies = list(self._latencies)
        if not latencies:
            return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0}
        arr = np.asarray(latencies, dtype=float)
        return {
            "count": int(arr.size),
            "p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean()),
        }

    def close(self) -> None:
        """Drain pending requests, stop the batcher and shut the pool down."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        self._batcher.join()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Batcher
    # ------------------------------------------------------------------ #
    def _batch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            try:
                self._process_batch(batch)
            except Exception as exc:  # defensive: never kill the batcher
                for pending in batch:
                    future = pending.ticket._future
                    if not future.done():
                        future.set_exception(exc)

    def _collect_batch(self) -> Optional[List[_Pending]]:
        """Claim the oldest request plus compatible arrivals within the window.

        Returns ``None`` exactly once: when the service is closed and the
        queue has drained.  On close with work still queued, the window is
        skipped so the backlog drains batch by batch without waiting.
        """
        with self._wakeup:
            while not self._queue:
                if self._closed:
                    return None
                self._wakeup.wait(timeout=0.1)
            head = self._queue.popleft()
            batch = [head]
            deadline = time.perf_counter() + self.batch_window
            while len(batch) < self.max_batch_size:
                kept: List[_Pending] = []
                while self._queue and len(batch) < self.max_batch_size:
                    pending = self._queue.popleft()
                    if pending.key == head.key:
                        batch.append(pending)
                    else:
                        kept.append(pending)
                for pending in reversed(kept):
                    self._queue.appendleft(pending)
                remaining = deadline - time.perf_counter()
                if len(batch) >= self.max_batch_size or remaining <= 0 or self._closed:
                    break
                self._wakeup.wait(timeout=remaining)
            return batch

    def _process_batch(self, batch: List[_Pending]) -> None:
        with self._stats_lock:
            self._next_batch_id += 1
            batch_id = self._next_batch_id
            self._counters["batches"] += 1

        # Claim the futures: a cancel() that landed during the wait window
        # wins here, deterministically.
        live: List[_Pending] = []
        cancelled = 0
        for pending in batch:
            if pending.ticket._future.set_running_or_notify_cancel():
                live.append(pending)
            else:
                cancelled += 1
        if cancelled:
            with self._stats_lock:
                self._counters["cancelled"] += cancelled
        if not live:
            return

        started = time.perf_counter()
        lp_params = live[0].request.lp_params
        key = lp_params.cache_key()
        fingerprints = [instance_fingerprint(p.request.instance) for p in live]

        # Warm path: answer from the store without touching a solver.
        solutions: Dict[str, Any] = {}
        store_hits: set = set()
        if self.store is not None:
            for fingerprint in fingerprints:
                if fingerprint in solutions:
                    continue
                stored = self.store.load_lp(fingerprint, key)
                if stored is not None:
                    solutions[fingerprint] = stored
                    store_hits.add(fingerprint)

        # Cold path: dedupe by fingerprint, one block-diagonal solve for all.
        solve_order: List[str] = []
        to_solve: List[SVGICInstance] = []
        for fingerprint, pending in zip(fingerprints, live):
            if fingerprint not in solutions and fingerprint not in solve_order:
                solve_order.append(fingerprint)
                to_solve.append(pending.request.instance)
        solver_pid = os.getpid()
        if to_solve:
            if self.workers:
                fresh, solver_pid = self._pool_solve(to_solve, lp_params)
            else:
                fresh = solve_fractional_batch(to_solve, lp_params)
            for fingerprint, solution in zip(solve_order, fresh):
                solutions[fingerprint] = solution
                if self.store is not None:
                    self.store.save_lp(fingerprint, key, solution)

        hit_count = sum(1 for fp in fingerprints if fp in store_hits)
        with self._stats_lock:
            self._counters["cache_hits"] += hit_count
            self._counters["lp_instances_solved"] += len(to_solve)
            if to_solve:
                self._counters["lp_batches"] += 1

        # Decode each request independently on its own seeded context: in the
        # batcher thread, or — with a pool configured and more than one live
        # request — fanned out across the persistent workers.  Results are a
        # function of the request alone (per-request derived seeds), so the
        # two paths and any worker interleaving produce identical configurations.
        decode_jobs = [
            (pending, fingerprint, fingerprint in store_hits)
            for fingerprint, pending in zip(fingerprints, live)
        ]
        if self.workers and len(live) > 1:
            pool = self._ensure_pool()
            decode_futures = [
                pool.submit(
                    _decode_in_worker,
                    pending.request.instance,
                    pending.request.algorithm,
                    pending.request.seed,
                    key,
                    solutions[fingerprint],
                    "store" if cache_hit else "external",
                    self.store,
                )
                for pending, fingerprint, cache_hit in decode_jobs
            ]
            for (pending, fingerprint, cache_hit), decode_future in zip(
                decode_jobs, decode_futures
            ):
                try:
                    outcome = decode_future.result()
                except Exception as exc:
                    pending.ticket._future.set_exception(exc)
                    continue
                self._finish_decode(
                    pending,
                    fingerprint,
                    cache_hit,
                    outcome,
                    solutions=solutions,
                    batch_id=batch_id,
                    batch_size=len(live),
                    started=started,
                    solver_pid=solver_pid,
                )
        else:
            for pending, fingerprint, cache_hit in decode_jobs:
                try:
                    outcome = _decode_in_worker(
                        pending.request.instance,
                        pending.request.algorithm,
                        pending.request.seed,
                        key,
                        solutions[fingerprint],
                        "store" if cache_hit else "external",
                        self.store,
                    )
                except Exception as exc:
                    pending.ticket._future.set_exception(exc)
                    continue
                self._finish_decode(
                    pending,
                    fingerprint,
                    cache_hit,
                    outcome,
                    solutions=solutions,
                    batch_id=batch_id,
                    batch_size=len(live),
                    started=started,
                    solver_pid=solver_pid,
                )

    def _finish_decode(
        self,
        pending: _Pending,
        fingerprint: str,
        cache_hit: bool,
        outcome: tuple,
        *,
        solutions: Dict[str, Any],
        batch_id: int,
        batch_size: int,
        started: float,
        solver_pid: int,
    ) -> None:
        """Assemble and publish one request's ServeResult from a decode outcome."""
        result, lp_solves, lp_store_hits, decode_seconds, decode_pid = outcome
        request = pending.request
        completed_at = time.perf_counter()
        serve = ServeResult(
            request_id=pending.ticket.request_id,
            algorithm=request.algorithm,
            result=result,
            fingerprint=fingerprint,
            cache_hit=cache_hit,
            batch_id=batch_id,
            batch_size=batch_size,
            queue_seconds=started - pending.submitted_at,
            solve_seconds=0.0 if cache_hit else float(solutions[fingerprint].lp_seconds),
            decode_seconds=decode_seconds,
            total_seconds=completed_at - pending.submitted_at,
            solver_pid=solver_pid if not cache_hit else os.getpid(),
            lp_solves=lp_solves,
            lp_store_hits=lp_store_hits,
            submitted_at=pending.submitted_at,
            completed_at=completed_at,
            decode_pid=decode_pid,
        )
        with self._stats_lock:
            self._counters["completed"] += 1
            self._counters["fallback_solves"] += lp_solves
            self._latencies.append(serve.total_seconds)
        pending.ticket._future.set_result(serve)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                mp_ctx = None
                if self.mp_context is not None:
                    import multiprocessing

                    mp_ctx = multiprocessing.get_context(self.mp_context)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=mp_ctx
                )
            return self._pool

    def _pool_solve(self, instances: Sequence[SVGICInstance], lp_params: LPParameters):
        return self._ensure_pool().submit(
            _solve_batch_in_worker, list(instances), lp_params
        ).result()


__all__ = ["SolverService"]
