"""Traffic replay over a :class:`~repro.serving.service.SolverService`.

Two arrival processes drive latency measurement:

* :func:`replay_closed_loop` — ``clients`` threads each keep exactly one
  request in flight (submit, block, repeat).  Latency is the client-side
  wall time per request; throughput is requests finished over the run.
* :func:`replay_open_loop` — requests arrive on a Poisson process at
  ``rate_rps``; latency is measured against the **scheduled** arrival time,
  so backlog (queueing delay) shows up in the tail — the standard
  open-loop correction that closed-loop replays hide.

Both return a :class:`ReplayReport` carrying every
:class:`~repro.serving.request.ServeResult`, the latency vector and the
p50/p99/throughput summary the benchmark prints and gates on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.serving.request import ServeResult
from repro.serving.service import SolverService
from repro.utils.rng import SeedLike, ensure_rng

#: One replay request: keyword arguments for :meth:`SolverService.submit`
#: (``instance`` required; ``algorithm`` / ``seed`` / ``lp_params`` optional).
ReplayRequest = Mapping[str, Any]


@dataclass
class ReplayReport:
    """Latencies and results of one replay run."""

    mode: str
    latencies: List[float]
    results: List[ServeResult]
    total_seconds: float
    parameters: Dict[str, Any] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def p50(self) -> float:
        return float(np.percentile(self.latencies, 50)) if self.latencies else 0.0

    @property
    def p99(self) -> float:
        return float(np.percentile(self.latencies, 99)) if self.latencies else 0.0

    @property
    def mean(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def requests_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.count / self.total_seconds

    def summary(self) -> str:
        return (
            f"{self.mode}: {self.count} request(s) in {self.total_seconds:.3f}s — "
            f"{self.requests_per_second:.1f} req/s, "
            f"p50 {self.p50 * 1e3:.1f} ms, p99 {self.p99 * 1e3:.1f} ms"
        )


def replay_closed_loop(
    service: SolverService,
    requests: Sequence[ReplayRequest],
    *,
    clients: int = 4,
) -> ReplayReport:
    """Drive ``requests`` through ``service`` with a fixed number of clients.

    Each client thread repeatedly takes the next unclaimed request, submits
    it and blocks on the result — the classic closed-loop load generator
    whose concurrency equals ``clients``.  Requests are claimed in order, so
    the submission sequence is deterministic up to thread scheduling.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    requests = list(requests)
    results: List[Any] = [None] * len(requests)
    latencies: List[float] = [0.0] * len(requests)
    cursor = {"next": 0}
    claim_lock = threading.Lock()

    def worker() -> None:
        while True:
            with claim_lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] = index + 1
            begun = time.perf_counter()
            results[index] = service.submit(**requests[index]).result()
            latencies[index] = time.perf_counter() - begun

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"replay-client-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = time.perf_counter() - started
    return ReplayReport(
        mode="closed-loop",
        latencies=latencies,
        results=results,
        total_seconds=total,
        parameters={"clients": clients},
    )


def replay_open_loop(
    service: SolverService,
    requests: Sequence[ReplayRequest],
    *,
    rate_rps: float,
    seed: SeedLike = 0,
) -> ReplayReport:
    """Drive ``requests`` through ``service`` on a Poisson arrival process.

    Inter-arrival gaps are exponential with mean ``1 / rate_rps`` (seeded,
    so a replay is reproducible).  Submission never waits for earlier
    results, and each latency is measured from the request's *scheduled*
    arrival to its completion — a service that falls behind accumulates
    backlog that inflates the tail, exactly as it would in production.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    requests = list(requests)
    rng = ensure_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, size=len(requests)))

    started = time.perf_counter()
    tickets = []
    for request, arrival in zip(requests, arrivals):
        delay = arrival - (time.perf_counter() - started)
        if delay > 0:
            time.sleep(delay)
        tickets.append(service.submit(**request))
    results = [ticket.result() for ticket in tickets]
    # ServeResult timestamps share the perf_counter clock, so scheduled
    # arrival and completion subtract cleanly.
    latencies = [
        float(result.completed_at - (started + arrival))
        for result, arrival in zip(results, arrivals)
    ]
    total = max(result.completed_at for result in results) - started if results else 0.0
    return ReplayReport(
        mode="open-loop",
        latencies=latencies,
        results=results,
        total_seconds=total,
        parameters={"rate_rps": rate_rps, "seed": seed},
    )


__all__ = ["ReplayReport", "ReplayRequest", "replay_closed_loop", "replay_open_loop"]
