"""Request, ticket and result records of the serving layer.

A caller hands the :class:`~repro.serving.service.SolverService` one
:class:`ConfigurationRequest` — the instance to configure, the registered
algorithm to run, a seed, and the LP relaxation parameters — and receives a
:class:`ServingTicket`, a thin wrapper over a
:class:`concurrent.futures.Future` that resolves to a :class:`ServeResult`.
The result couples the algorithm's configuration with serving provenance:
whether the request was answered from the warm store, which micro-batch it
rode in, the queue/solve/decode latency split, and the LP counters of its
:class:`~repro.core.pipeline.SolveContext`.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.pipeline import lp_cache_key
from repro.core.problem import SVGICInstance
from repro.core.result import AlgorithmResult


@dataclass(frozen=True)
class LPParameters:
    """The LP relaxation parameters a request solves under.

    Mirrors the keyword surface of
    :meth:`repro.core.pipeline.SolveContext.fractional`; requests sharing an
    equal ``LPParameters`` (and a compatible instance family) may be
    co-batched into one block-diagonal solve.
    """

    formulation: str = "simplified"
    prune_items: bool = True
    max_candidate_items: Optional[int] = None
    enforce_size_constraint: bool = True

    def cache_key(self) -> Tuple[Any, ...]:
        """The canonical context/store cache key these parameters map to."""
        return lp_cache_key(
            formulation=self.formulation,
            prune_items=self.prune_items,
            max_candidate_items=self.max_candidate_items,
            enforce_size_constraint=self.enforce_size_constraint,
        )


@dataclass(frozen=True)
class ConfigurationRequest:
    """One configuration request: instance, algorithm, seed, LP parameters.

    ``seed`` feeds the per-request generator
    (``derive_seed(seed, algorithm)``), so a request's result is a function
    of the request alone — never of arrival order or batch composition.
    """

    instance: SVGICInstance
    algorithm: str = "AVG-D"
    seed: int = 0
    lp_params: LPParameters = field(default_factory=LPParameters)


@dataclass
class ServeResult:
    """An answered request: the algorithm result plus serving provenance.

    ``cache_hit`` means the LP relaxation came off the warm store and no
    solver ran for this request; ``batch_id`` / ``batch_size`` identify the
    micro-batch cycle that processed it (co-batched requests share an id).
    ``solve_seconds`` is the request's amortized share of its batch's single
    block-diagonal solve (zero on cache hits); ``lp_solves`` is the solver
    invocations its decode context performed — zero unless the algorithm
    requested LP parameters other than the request's (the fallback path).
    ``decode_pid`` is the process that ran the decode stage: the service
    process for serial decodes, a pool worker when the service fanned the
    batch's decodes out to its persistent pool.
    """

    request_id: int
    algorithm: str
    result: AlgorithmResult
    fingerprint: str
    cache_hit: bool
    batch_id: int
    batch_size: int
    queue_seconds: float
    solve_seconds: float
    decode_seconds: float
    total_seconds: float
    solver_pid: int
    lp_solves: int
    lp_store_hits: int
    submitted_at: float
    completed_at: float
    decode_pid: int = 0

    @property
    def objective(self) -> float:
        """The configuration's scaled objective value (convenience accessor)."""
        return float(self.result.objective)


class ServingTicket:
    """Caller-side handle on one submitted request.

    Wraps the service's :class:`~concurrent.futures.Future`: ``result()``
    blocks for the :class:`ServeResult`, ``cancel()`` withdraws a request
    the batcher has not yet claimed (claimed requests are past the point of
    no return and run to completion).
    """

    def __init__(self, request_id: int, request: ConfigurationRequest, future: "Future[ServeResult]") -> None:
        self.request_id = request_id
        self.request = request
        self._future = future

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        """Block until the request is answered (or ``timeout`` expires)."""
        return self._future.result(timeout=timeout)

    def cancel(self) -> bool:
        """Try to withdraw the request; True if it will never be processed."""
        return self._future.cancel()

    def cancelled(self) -> bool:
        return self._future.cancelled()

    def done(self) -> bool:
        return self._future.done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._future.done() else "pending"
        return f"ServingTicket(id={self.request_id}, {state})"


__all__ = [
    "LPParameters",
    "ConfigurationRequest",
    "ServeResult",
    "ServingTicket",
]
