"""Evaluation metrics of Section 6: subgroup structure, regret/fairness, feasibility."""

from repro.metrics.evaluation import EvaluationReport, evaluate_result, evaluation_table
from repro.metrics.regret import happiness_ratios, regret_cdf, regret_ratios
from repro.metrics.subgroups import SubgroupMetrics, subgroup_metrics

__all__ = [
    "SubgroupMetrics",
    "subgroup_metrics",
    "regret_ratios",
    "happiness_ratios",
    "regret_cdf",
    "EvaluationReport",
    "evaluate_result",
    "evaluation_table",
]
