"""Subgroup-structure metrics (Section 6.5): Inter/Intra%, density, Co-display%, Alone%.

Given an SAVG k-Configuration, each slot implicitly partitions the users into
subgroups (users sharing the displayed item).  The paper characterizes the
partitions with:

* **Intra% / Inter%** — the share of social (friend) pairs whose endpoints
  fall in the same / different subgroups, averaged across slots;
* **normalized density** — average edge density inside the subgroups divided
  by the density of the whole social network;
* **Co-display%** — fraction of friend pairs that share a view on at least
  one common item somewhere in the configuration;
* **Alone%** — fraction of users that are alone (singleton subgroup) in
  every slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.configuration import UNASSIGNED, SAVGConfiguration
from repro.core.problem import SVGICInstance


@dataclass(frozen=True)
class SubgroupMetrics:
    """Subgroup-structure summary of one configuration.

    All ratios are in [0, 1]; multiply by 100 for the paper's percentages.
    """

    intra_edge_ratio: float
    inter_edge_ratio: float
    normalized_density: float
    co_display_ratio: float
    alone_ratio: float
    mean_subgroup_size: float
    max_subgroup_size: int
    num_subgroups_per_slot: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "intra_pct": 100.0 * self.intra_edge_ratio,
            "inter_pct": 100.0 * self.inter_edge_ratio,
            "normalized_density": self.normalized_density,
            "co_display_pct": 100.0 * self.co_display_ratio,
            "alone_pct": 100.0 * self.alone_ratio,
            "mean_subgroup_size": self.mean_subgroup_size,
            "max_subgroup_size": float(self.max_subgroup_size),
            "subgroups_per_slot": self.num_subgroups_per_slot,
        }


def _graph_density(num_nodes: int, num_pairs: int) -> float:
    """Undirected edge density ``|E| / (n choose 2)`` (0 for trivial graphs)."""
    if num_nodes < 2:
        return 0.0
    return num_pairs / (num_nodes * (num_nodes - 1) / 2.0)


def subgroup_metrics(instance: SVGICInstance, config: SAVGConfiguration) -> SubgroupMetrics:
    """Compute the Section-6.5 subgroup metrics of ``config`` on ``instance``.

    Fully vectorized: intra/inter and co-display counts are membership
    lookups over the ``(P, k)`` gathered endpoint assignments (one pass over
    the pair index arrays instead of per-slot/per-pair Python loops), and the
    per-slot subgroup structure comes from ``np.unique`` over each assignment
    column.  An unassigned endpoint belongs to no subgroup, so a pair with
    one can never be intra at that slot — it counts as inter (the PR 2
    semantics).
    """
    n, k = instance.num_users, instance.num_slots
    pairs = instance.pairs
    num_pairs = pairs.shape[0]

    base_density = _graph_density(n, num_pairs)

    # Pairwise structure over all slots at once: (P, k) endpoint gathers.
    if num_pairs:
        head = config.assignment[pairs[:, 0]]  # (P, k)
        tail = config.assignment[pairs[:, 1]]  # (P, k)
        intra_mask = (head == tail) & (head != UNASSIGNED)
        intra_total = int(intra_mask.sum())
        co_display = int(np.any(intra_mask, axis=1).sum())
    else:
        intra_mask = np.zeros((0, k), dtype=bool)
        intra_total = 0
        co_display = 0
    inter_total = num_pairs * k - intra_total

    not_alone = np.zeros(n, dtype=bool)
    density_samples: List[float] = []
    subgroup_sizes: List[int] = []
    subgroup_counts: List[int] = []
    for slot in range(k):
        column = config.assignment[:, slot]
        assigned = np.nonzero(column != UNASSIGNED)[0]
        items, inverse, counts = np.unique(
            column[assigned], return_inverse=True, return_counts=True
        )
        subgroup_counts.append(int(items.size))
        subgroup_sizes.extend(int(c) for c in counts)
        not_alone[assigned[counts[inverse] > 1]] = True
        # Internal friend pairs per subgroup are exactly the intra pairs at
        # this slot, bucketed by their shared item.
        internal = np.zeros(items.size, dtype=float)
        if num_pairs and items.size:
            slot_intra = intra_mask[:, slot]
            if np.any(slot_intra):
                bucket = np.searchsorted(items, head[slot_intra, slot])
                np.add.at(internal, bucket, 1.0)
        possible = counts * (counts - 1) / 2.0
        densities = np.divide(
            internal, possible, out=np.zeros(items.size), where=possible > 0
        )
        density_samples.extend(float(d) for d in densities)

    total_edge_slots = max(1, num_pairs * k)
    intra_ratio = intra_total / total_edge_slots
    inter_ratio = inter_total / total_edge_slots

    if density_samples and base_density > 0:
        normalized_density = float(np.mean(density_samples)) / base_density
    else:
        normalized_density = 0.0

    co_display_ratio = co_display / num_pairs if num_pairs else 0.0
    alone_flags = ~not_alone

    return SubgroupMetrics(
        intra_edge_ratio=intra_ratio,
        inter_edge_ratio=inter_ratio,
        normalized_density=normalized_density,
        co_display_ratio=co_display_ratio,
        alone_ratio=float(np.mean(alone_flags)) if n else 0.0,
        mean_subgroup_size=float(np.mean(subgroup_sizes)) if subgroup_sizes else 0.0,
        max_subgroup_size=int(max(subgroup_sizes)) if subgroup_sizes else 0,
        num_subgroups_per_slot=float(np.mean(subgroup_counts)) if subgroup_counts else 0.0,
    )


__all__ = ["SubgroupMetrics", "subgroup_metrics"]
