"""Subgroup-structure metrics (Section 6.5): Inter/Intra%, density, Co-display%, Alone%.

Given an SAVG k-Configuration, each slot implicitly partitions the users into
subgroups (users sharing the displayed item).  The paper characterizes the
partitions with:

* **Intra% / Inter%** — the share of social (friend) pairs whose endpoints
  fall in the same / different subgroups, averaged across slots;
* **normalized density** — average edge density inside the subgroups divided
  by the density of the whole social network;
* **Co-display%** — fraction of friend pairs that share a view on at least
  one common item somewhere in the configuration;
* **Alone%** — fraction of users that are alone (singleton subgroup) in
  every slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.configuration import SAVGConfiguration
from repro.core.problem import SVGICInstance


@dataclass(frozen=True)
class SubgroupMetrics:
    """Subgroup-structure summary of one configuration.

    All ratios are in [0, 1]; multiply by 100 for the paper's percentages.
    """

    intra_edge_ratio: float
    inter_edge_ratio: float
    normalized_density: float
    co_display_ratio: float
    alone_ratio: float
    mean_subgroup_size: float
    max_subgroup_size: int
    num_subgroups_per_slot: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "intra_pct": 100.0 * self.intra_edge_ratio,
            "inter_pct": 100.0 * self.inter_edge_ratio,
            "normalized_density": self.normalized_density,
            "co_display_pct": 100.0 * self.co_display_ratio,
            "alone_pct": 100.0 * self.alone_ratio,
            "mean_subgroup_size": self.mean_subgroup_size,
            "max_subgroup_size": float(self.max_subgroup_size),
            "subgroups_per_slot": self.num_subgroups_per_slot,
        }


def _graph_density(num_nodes: int, num_pairs: int) -> float:
    """Undirected edge density ``|E| / (n choose 2)`` (0 for trivial graphs)."""
    if num_nodes < 2:
        return 0.0
    return num_pairs / (num_nodes * (num_nodes - 1) / 2.0)


def subgroup_metrics(instance: SVGICInstance, config: SAVGConfiguration) -> SubgroupMetrics:
    """Compute the Section-6.5 subgroup metrics of ``config`` on ``instance``."""
    n, k = instance.num_users, instance.num_slots
    pairs = instance.pairs
    num_pairs = pairs.shape[0]
    pair_set = {(int(u), int(v)) for u, v in pairs}

    base_density = _graph_density(n, num_pairs)

    intra_total = 0
    inter_total = 0
    density_samples: List[float] = []
    alone_flags = np.ones(n, dtype=bool)
    subgroup_sizes: List[int] = []
    subgroup_counts: List[int] = []

    for slot in range(k):
        groups = config.subgroups_at_slot(slot)
        subgroup_counts.append(len(groups))
        member_to_group: Dict[int, int] = {}
        for gid, (_item, members) in enumerate(groups.items()):
            subgroup_sizes.append(len(members))
            if len(members) > 1:
                for user in members:
                    alone_flags[user] = False
            for user in members:
                member_to_group[user] = gid
            # Density inside the subgroup.
            if len(members) >= 2:
                internal = sum(
                    1
                    for i, u in enumerate(members)
                    for v in members[i + 1:]
                    if (min(u, v), max(u, v)) in pair_set
                )
                density_samples.append(_graph_density(len(members), internal))
            else:
                density_samples.append(0.0)
        for u, v in pairs:
            group_u = member_to_group.get(int(u))
            group_v = member_to_group.get(int(v))
            # An unassigned endpoint belongs to no subgroup, so the pair
            # cannot be intra at this slot; count it as inter.
            if group_u is not None and group_u == group_v:
                intra_total += 1
            else:
                inter_total += 1

    total_edge_slots = max(1, num_pairs * k)
    intra_ratio = intra_total / total_edge_slots
    inter_ratio = inter_total / total_edge_slots

    if density_samples and base_density > 0:
        normalized_density = float(np.mean(density_samples)) / base_density
    else:
        normalized_density = 0.0

    # Co-display%: friend pairs sharing at least one item at the same slot.
    co_display = 0
    for u, v in pairs:
        u, v = int(u), int(v)
        same = (config.assignment[u] == config.assignment[v]) & (config.assignment[u] >= 0)
        if np.any(same):
            co_display += 1
    co_display_ratio = co_display / num_pairs if num_pairs else 0.0

    return SubgroupMetrics(
        intra_edge_ratio=intra_ratio,
        inter_edge_ratio=inter_ratio,
        normalized_density=normalized_density,
        co_display_ratio=co_display_ratio,
        alone_ratio=float(np.mean(alone_flags)) if n else 0.0,
        mean_subgroup_size=float(np.mean(subgroup_sizes)) if subgroup_sizes else 0.0,
        max_subgroup_size=int(max(subgroup_sizes)) if subgroup_sizes else 0,
        num_subgroups_per_slot=float(np.mean(subgroup_counts)) if subgroup_counts else 0.0,
    )


__all__ = ["SubgroupMetrics", "subgroup_metrics"]
