"""One-stop evaluation of an algorithm result: utilities, subgroup metrics, regret, feasibility.

The experiment harness calls :func:`evaluate_result` for every algorithm on
every instance and collects the flat dictionaries into result tables; this is
what the benchmark scripts print to reproduce the paper's figures.

All utility numbers come from the vectorized engine in
:mod:`repro.core.objective` (the breakdown is computed once when the
:class:`~repro.core.result.AlgorithmResult` is built, and the regret ratios
ride on the vectorized ``per_user_utility`` / ``optimistic_user_upper_bound``),
so evaluating a result is cheap even on large instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.problem import SVGICInstance, SVGICSTInstance
from repro.core.result import AlgorithmResult
from repro.core.svgic_st import size_violation_report
from repro.metrics.regret import regret_ratios
from repro.metrics.subgroups import subgroup_metrics


@dataclass
class EvaluationReport:
    """Full metric set for one (algorithm, instance) pair."""

    algorithm: str
    total_utility: float
    preference_utility: float
    social_utility: float
    personal_share: float
    social_share: float
    seconds: float
    mean_regret: float
    subgroup: Dict[str, float]
    regrets: np.ndarray
    feasible: bool = True
    excess_users: int = 0
    info: Dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        """Flat dictionary row for tabular reporting."""
        row: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "total_utility": self.total_utility,
            "preference_utility": self.preference_utility,
            "social_utility": self.social_utility,
            "personal_pct": 100.0 * self.personal_share,
            "social_pct": 100.0 * self.social_share,
            "seconds": self.seconds,
            "mean_regret": self.mean_regret,
            "feasible": self.feasible,
            "excess_users": self.excess_users,
        }
        row.update(self.subgroup)
        return row


def evaluate_result(instance: SVGICInstance, result: AlgorithmResult) -> EvaluationReport:
    """Compute every Section-6 metric for ``result`` on ``instance``."""
    breakdown = result.breakdown
    subgroup = subgroup_metrics(instance, result.configuration).as_dict()
    regrets = regret_ratios(instance, result.configuration)
    feasible = True
    excess = 0
    if isinstance(instance, SVGICSTInstance):
        report = size_violation_report(instance, result.configuration)
        feasible = report.feasible
        excess = report.excess_users
    return EvaluationReport(
        algorithm=result.algorithm,
        total_utility=breakdown.total,
        preference_utility=breakdown.preference,
        social_utility=breakdown.social + breakdown.indirect_social,
        personal_share=breakdown.preference_share,
        social_share=breakdown.social_share,
        seconds=result.seconds,
        mean_regret=float(np.mean(regrets)) if regrets.size else 0.0,
        subgroup=subgroup,
        regrets=regrets,
        feasible=feasible,
        excess_users=excess,
        info=dict(result.info),
    )


def evaluation_table(
    reports: Iterable[EvaluationReport],
    columns: Optional[Sequence[str]] = None,
    *,
    precision: int = 3,
) -> str:
    """Render a list of evaluation reports as an aligned text table."""
    rows = [report.as_row() for report in reports]
    if not rows:
        return "(no results)"
    if columns is None:
        columns = [
            "algorithm",
            "total_utility",
            "personal_pct",
            "social_pct",
            "co_display_pct",
            "alone_pct",
            "mean_regret",
            "seconds",
        ]
    header = list(columns)
    formatted: List[List[str]] = [header]
    for row in rows:
        cells = []
        for column in header:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.{precision}f}")
            else:
                cells.append(str(value))
        formatted.append(cells)
    widths = [max(len(line[i]) for line in formatted) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in formatted]
    separator = "  ".join("-" * width for width in widths)
    return "\n".join([lines[0], separator] + lines[1:])


__all__ = ["EvaluationReport", "evaluate_result", "evaluation_table"]
