"""Regret / happiness ratios (Section 6.5) — per-user satisfaction and fairness.

For each user ``u`` the happiness ratio compares the SAVG utility she
actually receives with an optimistic upper bound: the utility she would get
if the whole configuration were chosen selfishly in her favour (her k best
items, all friends co-viewing each of them).  ``regret = 1 - happiness``.
Low regret across all users indicates both high satisfaction and fairness;
the paper compares algorithms by the CDF of the per-user regret ratios
(Figure 10(g-i)).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.configuration import SAVGConfiguration
from repro.core.objective import optimistic_user_upper_bound, per_user_utility
from repro.core.problem import SVGICInstance


def happiness_ratios(instance: SVGICInstance, config: SAVGConfiguration) -> np.ndarray:
    """Per-user happiness ratio ``hap(u) = achieved(u) / upper_bound(u)`` in [0, 1]."""
    achieved = per_user_utility(instance, config)
    upper = optimistic_user_upper_bound(instance)
    ratios = np.ones(instance.num_users, dtype=float)
    positive = upper > 0
    ratios[positive] = np.clip(achieved[positive] / upper[positive], 0.0, 1.0)
    return ratios


def regret_ratios(instance: SVGICInstance, config: SAVGConfiguration) -> np.ndarray:
    """Per-user regret ratio ``reg(u) = 1 - hap(u)``."""
    return 1.0 - happiness_ratios(instance, config)


def regret_cdf(
    regrets: Sequence[float], grid: Sequence[float] | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of regret ratios evaluated on ``grid`` (default 0, 0.05, ..., 1).

    Returns ``(grid, cdf)`` where ``cdf[i]`` is the fraction of users with
    regret at most ``grid[i]`` — the series plotted in Figure 10(g-i).
    """
    regrets = np.asarray(list(regrets), dtype=float)
    if grid is None:
        grid = np.linspace(0.0, 1.0, 21)
    grid = np.asarray(list(grid), dtype=float)
    if regrets.size == 0:
        return grid, np.zeros_like(grid)
    cdf = np.array([(regrets <= threshold).mean() for threshold in grid])
    return grid, cdf


def mean_regret(instance: SVGICInstance, config: SAVGConfiguration) -> float:
    """Mean per-user regret ratio (lower is better / fairer)."""
    return float(np.mean(regret_ratios(instance, config)))


__all__ = ["happiness_ratios", "regret_ratios", "regret_cdf", "mean_regret"]
