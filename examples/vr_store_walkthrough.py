"""Walk through the paper's running example (Alice, Bob, Charlie, Dave in a camera store).

Run with::

    python examples/vr_store_walkthrough.py

Reproduces Examples 1-5 and Tables 7-9 of the paper: the preference/social
utilities of Table 1, the optimal SAVG 3-configuration (scaled utility
10.35), the AVG / AVG-D traces, and the personalized / group / subgroup
baselines (8.25 / 8.35 / 8.4 / 8.7).
"""

from __future__ import annotations

from repro.baselines.group import run_group
from repro.baselines.personalized import run_per
from repro.baselines.subgroup import run_grf, run_sdp
from repro.core.avg import run_avg
from repro.core.avg_d import run_avg_d
from repro.core.ip import solve_exact
from repro.core.lp import solve_lp_relaxation
from repro.core.objective import scaled_total_utility
from repro.data.example_paper import (
    FRIENDSHIP_PARTITION,
    ITEM_NAMES,
    PREFERENCE_PARTITION,
    optimal_configuration,
    paper_example_instance,
    partition_indices,
)


def main() -> None:
    instance = paper_example_instance()
    print("Item catalogue:")
    for code, name in ITEM_NAMES.items():
        print(f"  {code}: {name}")
    print()

    print("The paper's SAVG 3-configuration (Figure 1):")
    optimal = optimal_configuration(instance)
    print(optimal.to_table(instance))
    print(f"scaled total SAVG utility: {scaled_total_utility(instance, optimal):.2f} "
          "(paper: 10.35)\n")

    fractional = solve_lp_relaxation(instance, prune_items=False)
    print(f"LP relaxation upper bound (scaled): {fractional.scaled_objective(instance):.2f}\n")

    runs = {
        "IP (exact)": solve_exact(instance, prune_items=False),
        "AVG (randomized, best of 10)": run_avg(instance, fractional, rng=0, repetitions=10),
        "AVG-D (deterministic, r=1)": run_avg_d(instance, fractional, balancing_ratio=1.0),
        "PER  (personalized)": run_per(instance),
        "FMG  (group)": run_group(instance),
        "SDP  (subgroup by friendship)": run_sdp(
            instance, communities=partition_indices(instance, FRIENDSHIP_PARTITION)
        ),
        "GRF  (subgroup by preference)": run_grf(
            instance, clusters=partition_indices(instance, PREFERENCE_PARTITION)
        ),
    }
    print(f"{'approach':35s}  scaled SAVG utility")
    print("-" * 58)
    for name, result in runs.items():
        print(f"{name:35s}  {result.scaled_objective(instance):6.2f}")

    print("\nAVG-D configuration:")
    print(runs["AVG-D (deterministic, r=1)"].configuration.to_table(instance))


if __name__ == "__main__":
    main()
