"""Compare all algorithms across the three dataset styles (Timik / Epinions / Yelp).

Run with::

    python examples/group_shopping_comparison.py

For each synthetic dataset style the script runs AVG, AVG-D and the four
baselines, reporting total SAVG utility, the preference/social split, the
subgroup structure and the mean regret ratio — a compact version of
Figures 5, 6 and 10 of the paper.
"""

from __future__ import annotations

from repro.data import datasets
from repro.experiments.harness import default_algorithms, run_algorithms
from repro.metrics.evaluation import evaluation_table


def main() -> None:
    for dataset in ("timik", "epinions", "yelp"):
        instance = datasets.make_instance(
            dataset, num_users=20, num_items=60, num_slots=5, seed=11
        )
        print(f"=== {dataset}-like dataset "
              f"({instance.num_users} users, {instance.num_edges // 2} friendships) ===")
        reports = run_algorithms(instance, default_algorithms(), seed=11)
        ordered = sorted(reports.values(), key=lambda r: -r.total_utility)
        print(evaluation_table(
            ordered,
            columns=[
                "algorithm", "total_utility", "personal_pct", "social_pct",
                "co_display_pct", "alone_pct", "normalized_density", "mean_regret", "seconds",
            ],
        ))
        winner = ordered[0]
        runner_up = ordered[1]
        gain = 100.0 * (winner.total_utility - runner_up.total_utility) / runner_up.total_utility
        print(f"-> best: {winner.algorithm} (+{gain:.1f}% over {runner_up.algorithm})\n")


if __name__ == "__main__":
    main()
