"""Ego-network case study (Section 6.6 / Figure 11): why flexible subgroups matter.

Run with::

    python examples/case_study_ego_network.py

The script extracts a 2-hop ego network around a well-connected Yelp-style
user whose tastes do not resemble her friends', runs AVG, SDP and GRF, and
narrates — slot by slot — whom the focal user gets to shop with under each
approach and how much regret she is left with.
"""

from __future__ import annotations

from repro.baselines.subgroup import run_grf, run_sdp
from repro.core.avg import run_avg
from repro.data import datasets
from repro.experiments.case_study import describe_case_study
from repro.metrics.regret import mean_regret


def main() -> None:
    instance = datasets.ego_network_instance(
        "yelp", population_users=120, max_users=9, num_items=40, num_slots=3, seed=29
    )
    print(f"2-hop ego network: {instance.num_users} users, "
          f"{instance.num_edges // 2} friendships, {instance.num_slots} slots\n")

    results = {
        "AVG": run_avg(instance, rng=0, repetitions=5),
        "SDP": run_sdp(instance),
        "GRF": run_grf(instance, rng=0),
    }

    study = describe_case_study(instance, results)
    print(study.to_text())

    print("\nSummary (lower regret = the focal user is better served):")
    for name, result in results.items():
        print(f"  {name:4s} total utility {result.objective:7.2f}   "
              f"mean regret {mean_regret(instance, result.configuration):.1%}   "
              f"focal-user regret {study.per_algorithm_regret[name]:.1%}")


if __name__ == "__main__":
    main()
