"""SVGIC-ST in action: a VR store with room-size limits and teleportation.

Run with::

    python examples/capacity_constrained_store.py

VR platforms cap the number of avatars that can share one location (VRChat:
16, IrisVR: 12).  This example builds an SVGIC-ST instance with a tight
subgroup-size limit, compares AVG (which respects the cap by construction)
against the pre-partitioned baselines (which may still violate it), and then
demonstrates the practical extensions: slot significance, multi-view display
and a dynamic shopper joining mid-session.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.group import run_fmg
from repro.baselines.prepartition import run_with_prepartition
from repro.core.avg import run_avg
from repro.core.svgic_st import size_violation_report
from repro.data import datasets
from repro.extensions.dynamic import DynamicSession
from repro.extensions.multi_view import extend_to_multi_view, multi_view_utility
from repro.extensions.slot_significance import aisle_significance, optimize_slot_order
from repro.core.objective import total_utility, weighted_total_utility


def main() -> None:
    instance = datasets.make_st_instance(
        "timik", num_users=18, num_items=50, num_slots=5,
        max_subgroup_size=6, teleport_discount=0.5, seed=23,
    )
    print(f"Store: {instance.num_users} shoppers, {instance.num_slots} shelves, "
          f"subgroup cap M={instance.max_subgroup_size}, "
          f"teleport discount d_tel={instance.teleport_discount}\n")

    ours = run_avg(instance, rng=1, repetitions=3)
    baseline = run_with_prepartition(run_fmg, instance, rng=1)

    for name, result in (("AVG", ours), ("FMG with pre-partitioning", baseline)):
        report = size_violation_report(instance, result.configuration)
        print(f"{name:28s} utility={result.objective:7.2f}  "
              f"feasible={report.feasible}  oversized subgroups={report.oversized_subgroups}  "
              f"largest={report.largest_subgroup}")
    print()

    # Extension B: shelf positions are not equally valuable (centre ~9x ends).
    gamma = aisle_significance(instance.num_slots)
    reordered = optimize_slot_order(instance, ours.configuration, gamma)
    before = weighted_total_utility(instance, ours.configuration, slot_significance=gamma)
    after = weighted_total_utility(instance, reordered, slot_significance=gamma)
    print(f"Slot-significance reordering: weighted utility {before:.2f} -> {after:.2f}")

    # Extension C: multi-view display with up to 3 views per shelf.
    mvd = extend_to_multi_view(instance, ours.configuration, views_per_slot=3)
    print(f"Multi-view display: utility {total_utility(instance, ours.configuration):.2f} "
          f"-> {multi_view_utility(instance, mvd):.2f} "
          f"({sum(len(v) for v in mvd.group_views.values())} group views added)")

    # Extension F: a shopper leaves and a new one joins mid-session.
    session = DynamicSession(instance, ours.configuration)
    leaving, joining = 3, 3
    session.remove_user(leaving)
    session.add_user(joining)
    session.local_search(joining)
    print(f"Dynamic session: user {leaving} left and re-joined; "
          f"utility is now {session.current_utility():.2f} "
          f"({len(session.teleport_suggestions(joining))} teleport suggestions for the newcomer)")


if __name__ == "__main__":
    main()
