"""Quickstart: build a VR group-shopping instance, configure it, inspect the result.

Run with::

    python examples/quickstart.py

The script builds a small Timik-style shopping group, runs the paper's AVG-D
algorithm together with the personalized and group baselines, and prints the
total SAVG utility, the preference/social split, and the subgroups formed at
each display slot.
"""

from __future__ import annotations

from repro import run_avg_d, run_fmg, run_per
from repro.data import datasets
from repro.metrics.evaluation import evaluate_result, evaluation_table


def main() -> None:
    # A shopping group of 15 friends, a catalogue of 60 items, 5 display slots.
    instance = datasets.make_instance(
        "timik", num_users=15, num_items=60, num_slots=5, social_weight=0.5, seed=7
    )
    print(f"Instance: {instance.name} — {instance.num_users} users, "
          f"{instance.num_items} items, {instance.num_slots} slots, "
          f"{instance.num_edges} social edges\n")

    results = {
        "AVG-D (ours)": run_avg_d(instance, balancing_ratio=1.0),
        "PER (personalized top-k)": run_per(instance),
        "FMG (group bundle)": run_fmg(instance),
    }

    reports = [evaluate_result(instance, result) for result in results.values()]
    print(evaluation_table(reports))
    print()

    ours = results["AVG-D (ours)"]
    print("Subgroups formed by AVG-D at slot 1 (item -> users):")
    for item, members in ours.configuration.subgroups_at_slot(0).items():
        print(f"  item {item:3d} -> users {members}")

    best_baseline = max(r.objective for name, r in results.items() if "ours" not in name)
    improvement = 100.0 * (ours.objective - best_baseline) / best_baseline
    print(f"\nAVG-D improves over the best baseline by {improvement:.1f}% total SAVG utility.")


if __name__ == "__main__":
    main()
