"""Quickstart: build a VR group-shopping instance, configure it, inspect the result.

Run with::

    python examples/quickstart.py

The script builds a small Timik-style shopping group, runs the paper's AVG-D
algorithm together with the personalized and group baselines, and prints the
total SAVG utility, the preference/social split, and the subgroups formed at
each display slot.  It closes with a parallel parameter sweep: the same
experiment table computed serially and through a process pool.
"""

from __future__ import annotations

from repro import run_avg_d, run_fmg, run_per
from repro.data import datasets
from repro.metrics.evaluation import evaluate_result, evaluation_table


def main() -> None:
    # A shopping group of 15 friends, a catalogue of 60 items, 5 display slots.
    instance = datasets.make_instance(
        "timik", num_users=15, num_items=60, num_slots=5, social_weight=0.5, seed=7
    )
    print(f"Instance: {instance.name} — {instance.num_users} users, "
          f"{instance.num_items} items, {instance.num_slots} slots, "
          f"{instance.num_edges} social edges\n")

    results = {
        "AVG-D (ours)": run_avg_d(instance, balancing_ratio=1.0),
        "PER (personalized top-k)": run_per(instance),
        "FMG (group bundle)": run_fmg(instance),
    }

    reports = [evaluate_result(instance, result) for result in results.values()]
    print(evaluation_table(reports))
    print()

    ours = results["AVG-D (ours)"]
    print("Subgroups formed by AVG-D at slot 1 (item -> users):")
    for item, members in ours.configuration.subgroups_at_slot(0).items():
        print(f"  item {item:3d} -> users {members}")

    best_baseline = max(r.objective for name, r in results.items() if "ours" not in name)
    improvement = 100.0 * (ours.objective - best_baseline) / best_baseline
    print(f"\nAVG-D improves over the best baseline by {improvement:.1f}% total SAVG utility.")

    parallel_sweep_demo()


def parallel_sweep_demo() -> None:
    """Parallel sweeps: compile a plan once, pick an executor per run.

    ``sweep()`` (and ``grid()`` for 2-D sweeps) first compiles the
    experiment into a plan of picklable jobs, then hands it to an executor.
    The default runs serially; ``ParallelExecutor(workers=...)`` fans jobs
    out over a process pool — chunked by sweep value so every instance keeps
    its single shared LP solve — and returns the *identical* table, so
    swapping executors is a pure throughput knob.  Every figure function
    (``figures.figure3_small_datasets`` etc.) takes the same ``executor=``
    argument.
    """
    import time

    from repro.core.registry import build_runners
    from repro.experiments import ParallelExecutor, sweep
    from repro.experiments.figures import InstanceSweepFactory

    print("\nParameter sweep: group size n in (10, 14, 18), serial vs 2 workers")
    factory = InstanceSweepFactory(dataset="timik", vary="n", num_items=30, num_slots=3)
    algorithms = build_runners(["AVG", "AVG-D", "PER"])

    tables = {}
    for label, executor in (("serial", None), ("2 workers", ParallelExecutor(workers=2))):
        start = time.perf_counter()
        tables[label] = sweep(
            "quickstart-sweep", "utility vs group size", (10, 14, 18),
            factory, algorithms, seed=7, executor=executor,
        )
        print(f"  {label:<10} {time.perf_counter() - start:6.2f} s")

    assert tables["serial"].comparable_rows() == tables["2 workers"].comparable_rows()
    print("  identical result tables — scheduling changed, the experiment did not.\n")
    print(tables["serial"].to_text(columns=("algorithm", "x", "total_utility", "mean_regret")))


if __name__ == "__main__":
    main()
