"""Social Event Organization (SEO) with the SVGIC-ST machinery (Section 4.4).

Run with::

    python examples/social_event_organization.py

A meetup platform wants to assign 18 members to a week-end programme of two
activity rounds chosen from six events (hiking, board games, wine tasting,
climbing, museum tour, cooking class).  Each event has a capacity of 5
people per round; members have personal affinities for events and enjoy
events more when friends attend with them.  The script maps the problem to
SVGIC-ST, solves it with AVG-D, and prints the resulting programme.
"""

from __future__ import annotations

import numpy as np

from repro.data import social_graphs
from repro.data.utility_models import generate_utilities
from repro.extensions.seo import SEOInstance, organize_events

EVENTS = ("hiking", "board games", "wine tasting", "climbing", "museum tour", "cooking class")


def build_instance(seed: int = 3) -> SEOInstance:
    rng = np.random.default_rng(seed)
    num_attendees = 18
    graph = social_graphs.yelp_like_graph(num_attendees, rng=rng, community_size=6)
    edges = social_graphs.directed_edges(graph)
    tables = generate_utilities(
        edges, num_attendees, len(EVENTS), model="piert", dataset="yelp", rng=rng
    )
    return SEOInstance(
        num_attendees=num_attendees,
        num_events=len(EVENTS),
        num_rounds=2,
        affinity=tables.preference,
        friendships=edges,
        synergy=tables.social,
        capacity=5,
        social_weight=0.5,
        event_names=EVENTS,
        attendee_names=tuple(f"member-{i:02d}" for i in range(num_attendees)),
    )


def main() -> None:
    seo = build_instance()
    plan = organize_events(seo, balancing_ratio=1.0)

    print(f"Organized {seo.num_rounds} rounds for {seo.num_attendees} members "
          f"(capacity {seo.capacity} per event per round)")
    print(f"algorithm: {plan.algorithm}   total utility: {plan.total_utility:.2f}   "
          f"feasible: {plan.feasible}\n")
    for round_index in range(seo.num_rounds):
        print(f"Round {round_index + 1}:")
        for event_id, name in enumerate(EVENTS):
            attendees = plan.attendees(event_id, round_index)
            if attendees:
                members = ", ".join(f"m{a:02d}" for a in attendees)
                print(f"  {name:14s} ({len(attendees)}/{seo.capacity}): {members}")
        print()


if __name__ == "__main__":
    main()
